package target

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/comdes"
	"repro/internal/dtm"
	"repro/internal/value"
)

// DefaultLatencyNs is the cluster network latency when ClusterConfig
// leaves it zero (100 µs — a time-triggered fieldbus slot).
const DefaultLatencyNs = 100_000

// ExecMode selects how Cluster.RunUntil advances the nodes.
type ExecMode uint8

// Execution modes.
const (
	// ExecAuto picks parallel when a TDMA bus schedule is installed (its
	// slot grid provides the conservative lookahead windows), serial for
	// constant-latency clusters — the seed behaviour for those.
	ExecAuto ExecMode = iota
	// ExecSerial drains a single shared kernel on the calling goroutine.
	ExecSerial
	// ExecParallel runs each node's kernel on its own goroutine between
	// delivery-bound barriers; traces, goldens and checkpoints are
	// byte-identical to ExecSerial.
	ExecParallel
)

// ClusterConfig parameterises BuildCluster.
type ClusterConfig struct {
	// LatencyNs is the network transmission latency for cross-node signal
	// bindings: the fixed end-to-end delay without a Bus schedule, the
	// propagation delay after slot departure with one.
	LatencyNs uint64
	// Bus, when non-nil, replaces the constant-latency network with a
	// time-triggered TDMA bus: cross-node publishes join the producing
	// node's TX queue and depart in that node's slots (dtm.BusSchedule —
	// slot grid, release jitter, seeded loss). Every node that produces a
	// cross-node binding must own at least one slot. Each board gains a
	// kernel-maintained "__busdrops" RAM counter, and departures/losses are
	// announced with EvBusSlot/EvFrameDropped frames from the sending node.
	Bus *dtm.BusSchedule
	// Compile carries code-generation options applied to every node's
	// program (instrumentation, fault injection).
	Compile codegen.Options
	// Board is the per-node board configuration (baud, CPU clock); the
	// system's bindings are appended automatically.
	Board Config
	// Exec selects serial or parallel node execution (default ExecAuto:
	// parallel with a Bus schedule, serial without).
	Exec ExecMode
}

// Cluster is a multi-node deployment: one Board per placement node, all
// sharing a single virtual clock, with cross-node signal bindings carried
// by a latency network.
type Cluster struct {
	// Kernel is the shared discrete-event clock. In parallel mode it holds
	// no events — each board runs on its own kernel (kernels) — but it
	// still carries the cluster-level notion of "now", advanced at every
	// barrier, so Now() and the host session are mode-agnostic.
	Kernel *dtm.Kernel
	// Net carries cross-node signal messages (Net.Sent counts them).
	Net *dtm.Network
	// Boards maps node name -> board.
	Boards map[string]*Board

	nodes []string
	inbox map[string]*dtm.Store

	// parallel is set when nodes execute on per-node kernels between
	// delivery-bound barriers; kernels maps node -> its kernel (same
	// iteration identity as nodes).
	parallel bool
	kernels  map[string]*dtm.Kernel
	arb      *arbiter
	// running guards RunUntil against re-entrant calls (from an event
	// callback or a second goroutine) — on the serial path that would
	// corrupt the shared event heap, on the parallel path the worker pool.
	running bool
}

// BuildCluster compiles each placement node's actors into a program,
// boots one board per node on a shared kernel, and wires cross-node
// bindings through a latency network.
func BuildCluster(sys *comdes.System, cfg ClusterConfig) (*Cluster, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = DefaultLatencyNs
	}
	k := dtm.NewKernel()
	c := &Cluster{
		Kernel:   k,
		Net:      dtm.NewNetwork(k, cfg.LatencyNs),
		Boards:   map[string]*Board{},
		nodes:    sys.Nodes(),
		inbox:    map[string]*dtm.Store{},
		parallel: cfg.Exec == ExecParallel || (cfg.Exec == ExecAuto && cfg.Bus != nil),
	}
	if c.parallel {
		// One kernel per node: boards, their schedulers and the network
		// events they own advance independently between barriers. The
		// shared Kernel keeps the cluster clock only.
		c.kernels = make(map[string]*dtm.Kernel, len(c.nodes))
		for _, node := range c.nodes {
			c.kernels[node] = dtm.NewKernel()
		}
		c.Net.SetNodeKernels(c.kernels)
		c.arb = newArbiter(c.nodes)
		c.Net.OnSend = c.arb.await
	}
	if cfg.Bus != nil {
		if err := c.Net.SetSchedule(cfg.Bus); err != nil {
			return nil, err
		}
		cfg.Compile.BusDrops = true
		// Every producing node needs a slot, or its frames can never leave
		// the TX queue — refuse at build time rather than dropping silently.
		for _, bind := range sys.Bindings {
			from, to := sys.NodeOf(bind.FromActor), sys.NodeOf(bind.ToActor)
			if from != to && !cfg.Bus.Owns(from) {
				return nil, fmt.Errorf("target: node %s produces cross-node signal %q but owns no bus slot", from, bind.Signal)
			}
		}
	}
	for _, node := range c.nodes {
		sub := comdes.NewSystem(node)
		for _, a := range sys.Actors {
			if sys.NodeOf(a.Name()) != node {
				continue
			}
			if err := sub.AddActor(a); err != nil {
				return nil, err
			}
		}
		prog, err := codegen.Compile(sub, cfg.Compile)
		if err != nil {
			return nil, fmt.Errorf("target: node %s: %w", node, err)
		}
		bcfg := cfg.Board
		bcfg.Bindings = append(append([]comdes.Binding(nil), bcfg.Bindings...), sys.Bindings...)
		brd, err := NewBoard(node, prog, bcfg, c.nodeKernel(node))
		if err != nil {
			return nil, fmt.Errorf("target: node %s: %w", node, err)
		}
		c.Boards[node] = brd
	}
	// Each node's inbox is its local view of the global signal board:
	// arriving messages are pushed into the consumer's __io input symbols
	// immediately (so RAM watchers see them at arrival time), and every
	// consumer release re-latches from the board — reference interpreter
	// semantics, so a host-injected __io value cannot outlive the next
	// release the way it would if delivery were change-triggered only.
	for _, node := range c.nodes {
		node := node
		brd := c.Boards[node]
		store := dtm.NewStore(c.nodeKernel(node).Now)
		store.OnChange = func(now uint64, signal string, old, new value.Value) {
			for _, bind := range sys.Bindings {
				if bind.Signal != signal || sys.NodeOf(bind.ToActor) != node {
					continue
				}
				if err := brd.WriteInput(bind.ToActor, bind.ToPort, new); err != nil {
					brd.fail(err)
				}
			}
		}
		brd.preRelease = func(now uint64, actor string) {
			for _, bind := range sys.Bindings {
				if bind.ToActor != actor || sys.NodeOf(bind.FromActor) == node {
					continue
				}
				if v := store.Get(bind.Signal); v.IsValid() {
					if err := brd.WriteInput(bind.ToActor, bind.ToPort, v); err != nil {
						brd.fail(err)
					}
				}
			}
		}
		c.inbox[node] = store
		c.Net.Bind(node, store)
	}
	// Producers hand cross-node publishes to the network; intra-node
	// bindings were already delivered by the board itself. The producing
	// node's identity rides along so a TDMA schedule can queue the frame
	// into that node's slots (without a schedule SendFrom is Send).
	for _, node := range c.nodes {
		node := node
		c.Boards[node].OnPublish = func(now uint64, actor, port string, v value.Value) {
			for _, bind := range sys.Bindings {
				if bind.FromActor != actor || bind.FromPort != port {
					continue
				}
				toNode := sys.NodeOf(bind.ToActor)
				if toNode == node {
					continue
				}
				c.Net.SendFrom(node, bind.Signal, v, c.inbox[toNode])
			}
		}
	}
	if cfg.Bus != nil {
		// Bus incidents surface from the sending node's board: a departure
		// is announced with EvBusSlot, a loss lands in the node's __busdrops
		// RAM counter and goes out as EvFrameDropped (where on-target
		// breakpoint conditions over __busdrops can halt the board).
		c.Net.OnSlot = func(now uint64, owner, signal string, slot uint64) {
			if brd := c.Boards[owner]; brd != nil {
				brd.busSlot(now, signal, slot)
			}
		}
		c.Net.OnDrop = func(now uint64, owner, signal string, total uint64) {
			if brd := c.Boards[owner]; brd != nil {
				brd.busDrop(now, signal, total)
			}
		}
	}
	return c, nil
}

// nodeKernel returns the kernel node's events run on: its own kernel in
// parallel mode, the shared one otherwise.
func (c *Cluster) nodeKernel(node string) *dtm.Kernel {
	if c.parallel {
		return c.kernels[node]
	}
	return c.Kernel
}

// Parallel reports whether nodes execute on per-node kernels between
// delivery-bound barriers.
func (c *Cluster) Parallel() bool { return c.parallel }

// BusStats returns node's TX accounting on the time-triggered bus. ok is
// false when the node is unknown to the bus (no schedule installed, or a
// node owning no slot that never sent) — previously that case returned a
// zero BusStats, indistinguishable from a slot owner with no traffic.
func (c *Cluster) BusStats(node string) (dtm.BusStats, bool) { return c.Net.Stats(node) }

// Nodes returns the cluster's node names in sorted order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Now returns the shared virtual time.
func (c *Cluster) Now() uint64 { return c.Kernel.Now() }

// RunUntil advances the whole cluster to absolute time t, executing every
// board's releases, deadlines and network deliveries in global event
// order, then drains each board's UART boundary work. Serial and parallel
// modes produce byte-identical traces; re-entrant calls (from an event
// callback or a second goroutine) panic rather than corrupt the event
// heap or the worker pool.
func (c *Cluster) RunUntil(t uint64) {
	if c.running {
		panic("target: re-entrant Cluster.RunUntil")
	}
	c.running = true
	defer func() { c.running = false }()
	if c.parallel {
		c.runParallel(t)
	} else {
		c.Kernel.RunUntil(t)
	}
	for _, node := range c.nodes {
		c.Boards[node].sync(t)
	}
}

// Board returns the named node's board, or nil.
func (c *Cluster) Board(node string) *Board { return c.Boards[node] }
