package target

import (
	"repro/internal/codegen"
	"repro/internal/protocol"
	"repro/internal/value"
)

// The firmware half of the board: what the scheduled task callbacks do at
// release and deadline instants, how instrumentation events reach the
// UART, and how host instructions are serviced.

// release runs at a task's release instant: the line is advanced to now,
// pending host instructions are serviced (the firmware polls its UART at
// task boundaries), the environment hook runs, and the __io inputs are
// latched into their stable task-instance symbols.
func (b *Board) release(u *codegen.Unit, now uint64) {
	b.sync(now)
	if b.preRelease != nil {
		b.preRelease(now, u.Name)
	}
	if b.PreLatch != nil {
		b.PreLatch(now, u.Name)
	}
	for _, lp := range u.InLatch {
		v, err := b.LoadSym(lp.Work)
		if err != nil {
			b.fail(err)
			continue
		}
		if err := b.StoreSym(lp.Out, v); err != nil {
			b.fail(err)
		}
	}
}

// execute runs the unit body on the VM, accounts cycles and sends any
// instrumentation events raised by OpEmit. It returns the virtual
// execution cost so the scheduler can detect deadline overruns.
func (b *Board) execute(u *codegen.Unit, now uint64) (uint64, error) {
	res, err := codegen.Exec(b.Prog, u.Body, b)
	b.account(res)
	b.flushEmits(now, res.Emits)
	// Full-precision cycle -> time conversion (per run, so CPUHz values
	// that do not divide 1e9 — or exceed it — stay accurate).
	return res.Cycles * 1_000_000_000 / b.cfg.CPUHz, err
}

// deadline runs at the task's deadline instant: working outputs are
// latched into the published __pub symbols, instrumented signal events are
// emitted (each costs EmitCycles of target CPU — the active interface is
// never free), and signal bindings deliver the published values to their
// consumers.
func (b *Board) deadline(u *codegen.Unit, now uint64) {
	b.Link.Advance(now)
	for _, lp := range u.OutLatch {
		v, err := b.LoadSym(lp.Work)
		if err != nil {
			b.fail(err)
			continue
		}
		if err := b.StoreSym(lp.Out, v); err != nil {
			b.fail(err)
			continue
		}
		if tmpl, ok := u.SignalEvents[lp.Out]; ok {
			published, err := b.LoadSym(lp.Out)
			if err != nil {
				b.fail(err)
				continue
			}
			b.cycles += codegen.EmitCycles
			b.instr += codegen.EmitCycles
			b.emitTemplate(now, b.Prog.Events[tmpl], published, true)
		}
	}
	// State-message communication: published values reach their consumers'
	// __io symbols. Local consumers are written directly; the OnPublish
	// hook lets a cluster route cross-board bindings over its network.
	for _, bind := range b.routes[u.Name] {
		pub, ok := u.OutputSyms[bind.FromPort]
		if !ok {
			continue
		}
		v, err := b.LoadSym(pub)
		if err != nil {
			b.fail(err)
			continue
		}
		if dst, ok := b.units[bind.ToActor]; ok {
			if in, ok := dst.InputSyms[bind.ToPort]; ok {
				if err := b.StoreSym(in, v); err != nil {
					b.fail(err)
				}
			}
		}
	}
	if b.OnPublish != nil {
		for _, port := range b.outPorts[u.Name] {
			if v, err := b.LoadSym(u.OutputSyms[port]); err == nil {
				b.OnPublish(now, u.Name, port, v)
			}
		}
	}
}

// account folds one VM run into the cycle counters. Every OpEmit the run
// executed is instrumentation overhead.
func (b *Board) account(res codegen.ExecResult) {
	b.cycles += res.Cycles
	b.instr += uint64(len(res.Emits)) * codegen.EmitCycles
}

// flushEmits turns the VM's pending emit refs into wire frames.
func (b *Board) flushEmits(now uint64, emits []codegen.EmitRef) {
	for _, ref := range emits {
		b.emitTemplate(now, b.Prog.Events[ref.Template], ref.Value, ref.HasValue)
	}
}

// emitTemplate builds one event from a compiled template and queues it on
// the UART.
func (b *Board) emitTemplate(now uint64, t codegen.EventTemplate, v value.Value, hasValue bool) {
	ev := protocol.Event{Type: t.Type, Time: now, Source: t.Source, Arg1: t.Arg1, Arg2: t.Arg2}
	if hasValue || t.WithValue {
		ev.Value = v.Float()
	}
	b.send(ev)
}

// send stamps the next sequence number and transmits the frame. The line
// paces delivery: at the configured baud each byte occupies the wire for
// its bit time, so a saturated link delays or drops frames — exactly the
// bandwidth ceiling of the active command interface.
func (b *Board) send(ev protocol.Event) {
	b.seq++
	ev.Seq = b.seq
	wire, err := protocol.EncodeEvent(ev)
	if err != nil {
		b.fail(err)
		return
	}
	b.portA.Send(wire)
}

// sync advances the UART line to now and services any host instructions
// that have fully arrived. Called at task releases and RunFor boundaries;
// the latter keeps a halted target responsive to a remote Resume.
func (b *Board) sync(now uint64) {
	b.Link.Advance(now)
	_, ins := b.dec.Feed(b.portA.Recv())
	for _, in := range ins {
		b.service(in, now)
	}
}

// service executes one GDM -> target instruction and acknowledges with an
// event. Model-level breakpoints and stepping live host-side in this
// reproduction, so InStep/InSetBreak/InClearBreak are accepted and
// ignored.
func (b *Board) service(in protocol.Instruction, now uint64) {
	switch in.Type {
	case protocol.InPause:
		b.sched.Halt()
		b.send(protocol.Event{Type: protocol.EvHalted, Time: now, Source: b.Name})
	case protocol.InResume:
		b.sched.Resume()
		b.send(protocol.Event{Type: protocol.EvResumed, Time: now, Source: b.Name})
	case protocol.InReadVar:
		b.ackWatch(in.Source, now)
	case protocol.InWriteVar:
		if idx, ok := b.Prog.Symbols.Index(in.Source); ok {
			if err := b.StoreSym(idx, value.F(in.Value)); err == nil {
				b.ackWatch(in.Source, now)
			}
		}
	}
}

// ackWatch answers a variable read/write instruction with the symbol's
// current RAM value.
func (b *Board) ackWatch(symbol string, now uint64) {
	idx, ok := b.Prog.Symbols.Index(symbol)
	if !ok {
		return
	}
	v, err := b.LoadSym(idx)
	if err != nil {
		return
	}
	b.send(protocol.Event{
		Type: protocol.EvWatch, Time: now, Source: symbol,
		Arg2: v.String(), Value: v.Float(),
	})
}

// fail records the first firmware error (surfaced through Err).
func (b *Board) fail(err error) {
	if b.lastErr == nil {
		b.lastErr = err
	}
}
