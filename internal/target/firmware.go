package target

import (
	"repro/internal/codegen"
	"repro/internal/dtm"
	"repro/internal/protocol"
	"repro/internal/value"
)

// The firmware half of the board: what the scheduled task callbacks do at
// release and deadline instants, how instrumentation events reach the
// UART, and how host instructions are serviced.

// release runs at a task's release instant: the line is advanced to now,
// pending host instructions are serviced (the firmware polls its UART at
// task boundaries), the environment hook runs, and the __io inputs are
// latched into their stable task-instance symbols.
func (b *Board) release(u *codegen.Unit, now uint64) {
	b.sync(now)
	if b.preRelease != nil {
		b.preRelease(now, u.Name)
	}
	if b.PreLatch != nil {
		b.PreLatch(now, u.Name)
	}
	armed := len(b.agent.bps) > 0
	for _, lp := range u.InLatch {
		b.copySym(lp.Work, lp.Out)
		if armed {
			// Latch copies bypass the VM's store hook; predicates over the
			// latched symbols get evaluated at the body's next check site.
			b.agent.touch(b.Prog.Symbols.Sym(lp.Out).Name)
		}
	}
}

// execute runs the unit body to completion on a pooled VM machine —
// the Cooperative policy's release path. Cycles are accounted and any
// instrumentation events raised by OpEmit go on the wire. It returns the
// virtual execution cost so the scheduler can detect deadline overruns.
// When the breakpoint agent halts the VM mid-body, the release is
// suspended: the machine is kept for resumption, an EvBreak/EvStepped
// frame stamped with the triggering instruction's virtual time goes on
// the wire, and dtm.ErrSuspended tells the scheduler to skip the deadline
// latch.
func (b *Board) execute(u *codegen.Unit, now uint64) (uint64, error) {
	ue := b.exec[u.Name]
	m := ue.acquire(b)
	m.Hook = b.agent.hook()
	res, err := m.Run()
	b.account(res)
	b.flushEmits(now, res.Emits)
	cost := b.cyclesToNs(res.Cycles)
	if err != nil {
		ue.recycle(m)
		return cost, err
	}
	if res.BreakPC >= 0 {
		b.susp = &suspended{u: u, ue: ue, m: m, rel: now, prev: res}
		b.sched.Halt()
		b.send(b.agent.hitEvent(now + cost))
		return cost, dtm.ErrSuspended
	}
	ue.recycle(m)
	return cost, nil
}

// sliceUnit runs one budgeted slice of a release under the FixedPriority
// policy — the dtm.Task.Slice hook. The first slice of a release acquires
// a pooled machine; later slices continue it from the interrupted
// instruction. Cycles and emits are accounted as deltas against the
// portion already charged, so a release preempted five times costs
// exactly what it costs uninterrupted (plus context switches). A
// breakpoint hit inside any slice suspends the release exactly as in the
// cooperative path, with the machine parked for resumption.
func (b *Board) sliceUnit(ue *unitExec, release, now, budgetNs uint64) (uint64, bool, error) {
	if !ue.active || ue.rel != release {
		ue.m = ue.acquire(b)
		ue.rel = release
		ue.active = true
		ue.prev = codegen.ExecResult{BreakPC: -1}
	}
	m := ue.m
	m.Hook = b.agent.hook() // breakpoints may have changed between slices
	budget := b.nsToCycles(budgetNs)
	if budget == 0 {
		budget = 1 // always make progress, even on sub-cycle budgets
	}
	res, err := m.RunBudget(budget)
	delta := res.Cycles - ue.prev.Cycles
	b.cycles += delta
	b.instr += res.CheckCycles - ue.prev.CheckCycles
	newEmits := res.Emits[len(ue.prev.Emits):]
	b.instr += uint64(len(newEmits)) * codegen.EmitCycles
	b.flushEmits(now, newEmits)
	used := b.cyclesToNsCeil(delta)
	if err != nil {
		ue.active = false
		ue.recycle(m)
		return used, false, err
	}
	if res.BreakPC >= 0 {
		ue.prev = res
		b.sched.Halt()
		b.send(b.agent.hitEvent(now + used))
		return used, false, dtm.ErrSuspended
	}
	if m.Done() {
		ue.active = false
		ue.recycle(m)
		return used, true, nil
	}
	ue.prev = res
	return used, false, nil
}

// missed is the FixedPriority scheduler's deadline-miss hook, invoked at
// the latch instant of an unfinished release: the kernel counter lands in
// the task's __misses RAM symbol (visible to the passive JTAG interface),
// an EvDeadlineMiss frame goes out on the UART, and on-target breakpoint
// conditions over the counter are checked — so "break on deadline miss"
// halts the board at the miss itself.
func (b *Board) missed(now uint64, t *dtm.Task) {
	u := b.units[t.Name]
	name := b.Prog.Symbols.Sym(u.MissSym).Name
	if err := b.StoreSym(u.MissSym, value.I(int64(t.DeadlineMisses))); err != nil {
		b.fail(err)
	}
	b.send(protocol.Event{
		Type: protocol.EvDeadlineMiss, Time: now, Source: t.Name,
		Value: float64(t.DeadlineMisses),
	})
	b.checkSchedSym(now, name, value.I(int64(t.DeadlineMisses)))
}

// preempted is the FixedPriority scheduler's preemption hook: counter to
// RAM, EvPreempt on the wire, breakpoint conditions over __preempts
// checked at the preemption boundary.
func (b *Board) preempted(now uint64, t, by *dtm.Task) {
	u := b.units[t.Name]
	name := b.Prog.Symbols.Sym(u.PreemptSym).Name
	if err := b.StoreSym(u.PreemptSym, value.I(int64(t.Preemptions))); err != nil {
		b.fail(err)
	}
	b.send(protocol.Event{
		Type: protocol.EvPreempt, Time: now, Source: t.Name, Arg1: by.Name,
		Value: float64(t.Preemptions),
	})
	b.checkSchedSym(now, name, value.I(int64(t.Preemptions)))
}

// busSlot announces one TDMA frame departure from this node's TX queue —
// the cluster network's slot hook, stamped at the departure instant.
func (b *Board) busSlot(now uint64, signal string, slot uint64) {
	b.send(protocol.Event{
		Type: protocol.EvBusSlot, Time: now, Source: b.Name, Arg1: signal,
		Value: float64(slot),
	})
}

// busDrop is the cluster network's loss hook for this node: the cumulative
// drop counter lands in the __busdrops RAM symbol (visible to the passive
// JTAG interface), an EvFrameDropped frame goes out on the UART, and
// on-target breakpoint conditions over the counter are checked — so "break
// on bus loss" halts the board at the slot that lost the frame.
func (b *Board) busDrop(now uint64, signal string, total uint64) {
	if b.Prog.BusDropSym >= 0 {
		if err := b.StoreSym(b.Prog.BusDropSym, value.I(int64(total))); err != nil {
			b.fail(err)
		}
	}
	b.send(protocol.Event{
		Type: protocol.EvFrameDropped, Time: now, Source: b.Name, Arg1: signal,
		Value: float64(total),
	})
	if b.Prog.BusDropSym >= 0 {
		b.checkSchedSym(now, b.Prog.Symbols.Sym(b.Prog.BusDropSym).Name, value.I(int64(total)))
	}
}

// checkSchedSym runs the indexed breakpoint check for one scheduling
// counter symbol the kernel just wrote.
func (b *Board) checkSchedSym(now uint64, sym string, v value.Value) {
	if len(b.agent.bps) == 0 || b.sched.Halted() {
		return
	}
	hit, cost := b.agent.check([]string{sym}, sym, v, true)
	b.cycles += cost
	b.instr += cost
	if hit {
		b.sched.Halt()
		b.send(b.agent.hitEvent(now))
	}
}

// cyclesToNs is the full-precision cycle -> time conversion (per run, so
// CPUHz values that do not divide 1e9 — or exceed it — stay accurate).
func (b *Board) cyclesToNs(cycles uint64) uint64 {
	return cycles * 1_000_000_000 / b.cfg.CPUHz
}

// cyclesToNsCeil rounds up, so any nonzero slice of work consumes at
// least one nanosecond of virtual time and the preemptive scheduler
// always makes progress on cores faster than 1 GHz.
func (b *Board) cyclesToNsCeil(cycles uint64) uint64 {
	return (cycles*1_000_000_000 + b.cfg.CPUHz - 1) / b.cfg.CPUHz
}

// nsToCycles converts a slice budget to VM cycles (floor).
func (b *Board) nsToCycles(ns uint64) uint64 {
	return ns * b.cfg.CPUHz / 1_000_000_000
}

// suspended is one release interrupted mid-body by the breakpoint agent
// under the Cooperative policy.
type suspended struct {
	u    *codegen.Unit
	ue   *unitExec
	m    *codegen.Machine
	rel  uint64             // release instant
	prev codegen.ExecResult // portion already accounted and flushed
}

// runSuspended finishes a release interrupted by the breakpoint agent:
// the VM continues from the instruction after the hit, newly raised emits
// and cycles are accounted as a delta, and the deadline latch that
// dtm.ErrSuspended skipped is made up. Re-hitting a breakpoint during the
// continuation re-suspends. Under the FixedPriority policy suspensions
// live inside the scheduler's job queue instead (b.susp stays nil), so
// this is a no-op there.
func (b *Board) runSuspended() {
	if b.susp == nil || b.sched.Halted() {
		return
	}
	s := b.susp
	s.m.Hook = b.agent.hook() // breakpoints may have changed while halted
	res, err := s.m.Run()
	now := b.kernel.Now()
	b.cycles += res.Cycles - s.prev.Cycles
	b.instr += res.CheckCycles - s.prev.CheckCycles
	newEmits := res.Emits[len(s.prev.Emits):]
	b.instr += uint64(len(newEmits)) * codegen.EmitCycles
	b.flushEmits(now, newEmits)
	if err != nil {
		b.susp = nil
		s.ue.recycle(s.m)
		b.fail(err)
		return
	}
	if res.BreakPC >= 0 {
		s.prev = res
		b.sched.Halt()
		b.send(b.agent.hitEvent(now))
		return
	}
	b.susp = nil
	s.ue.recycle(s.m)
	u, rel := s.u, s.rel
	if d := rel + u.Deadline; d > now {
		b.deferLatch(u, d)
	} else {
		b.deadline(u, now)
	}
}

// deferLatch arms a made-up deadline latch as an explicit record (part of
// the board snapshot) instead of a bare closure.
func (b *Board) deferLatch(u *codegen.Unit, at uint64) {
	dl := &deferredLatch{u: u, at: at}
	b.deferred = append(b.deferred, dl)
	dl.seq, _ = b.kernel.ScheduleTagged(at, func(n uint64) { b.fireDeferred(dl, n) })
}

// fireDeferred runs one made-up latch and retires its record.
func (b *Board) fireDeferred(dl *deferredLatch, now uint64) {
	for i, d := range b.deferred {
		if d == dl {
			b.deferred = append(b.deferred[:i], b.deferred[i+1:]...)
			break
		}
	}
	b.deadline(dl.u, now)
}

// deadline runs at the task's deadline instant: working outputs are
// latched into the published __pub symbols, instrumented signal events are
// emitted (each costs EmitCycles of target CPU — the active interface is
// never free), and signal bindings deliver the published values to their
// consumers.
func (b *Board) deadline(u *codegen.Unit, now uint64) {
	b.Link.Advance(now)
	b.reportDrops(now)
	for _, lp := range u.OutLatch {
		b.copySym(lp.Work, lp.Out)
		if tmpl, ok := u.SignalEvents[lp.Out]; ok {
			published, err := b.LoadSym(lp.Out)
			if err != nil {
				b.fail(err)
				continue
			}
			b.cycles += codegen.EmitCycles
			b.instr += codegen.EmitCycles
			b.emitTemplate(now, b.Prog.Events[tmpl], published, true)
		}
	}
	// State-message communication: published values reach their consumers'
	// __io symbols. Local consumers are written directly; the OnPublish
	// hook lets a cluster route cross-board bindings over its network.
	for _, bind := range b.routes[u.Name] {
		pub, ok := u.OutputSyms[bind.FromPort]
		if !ok {
			continue
		}
		if dst, ok := b.units[bind.ToActor]; ok {
			if in, ok := dst.InputSyms[bind.ToPort]; ok {
				b.copySym(pub, in)
			}
		}
	}
	if b.OnPublish != nil {
		for _, port := range b.outPorts[u.Name] {
			if v, err := b.LoadSym(u.OutputSyms[port]); err == nil {
				b.OnPublish(now, u.Name, port, v)
			}
		}
	}
	// The publish site is the third breakpoint check point (after the VM's
	// store and emit sites): conditions over __pub symbols and freshly
	// delivered bindings trip here, and a pending step completes — the
	// deadline latch *is* a model event (signal publication), so stepping
	// works even on a completely clean, uninstrumented build. A board that
	// is already halted only drains pre-latched deadlines; those must not
	// re-trigger the agent.
	if b.sched.Halted() {
		return
	}
	if len(b.agent.bps) > 0 {
		hit, cost := b.agent.check(b.pubSyms[u.Name], u.Name, value.Value{}, false)
		b.cycles += cost
		b.instr += cost
		if hit {
			b.sched.Halt()
			b.send(b.agent.hitEvent(now))
			return
		}
	}
	if b.agent.stepArm {
		b.agent.stepArm = false
		b.sched.Halt()
		b.send(protocol.Event{Type: protocol.EvStepped, Time: now, Source: b.Name, Arg1: u.Name})
	}
}

// account folds one VM run into the cycle counters. Every OpEmit the run
// executed — and every breakpoint predicate it evaluated — is
// instrumentation overhead.
func (b *Board) account(res codegen.ExecResult) {
	b.cycles += res.Cycles
	b.instr += uint64(len(res.Emits))*codegen.EmitCycles + res.CheckCycles
}

// flushEmits turns the VM's pending emit refs into wire frames.
func (b *Board) flushEmits(now uint64, emits []codegen.EmitRef) {
	for _, ref := range emits {
		b.emitTemplate(now, b.Prog.Events[ref.Template], ref.Value, ref.HasValue)
	}
}

// emitTemplate builds one event from a compiled template and queues it on
// the UART.
func (b *Board) emitTemplate(now uint64, t codegen.EventTemplate, v value.Value, hasValue bool) {
	ev := protocol.Event{Type: t.Type, Time: now, Source: t.Source, Arg1: t.Arg1, Arg2: t.Arg2}
	if hasValue || t.WithValue {
		ev.Value = v.Float()
	}
	b.send(ev)
}

// send stamps the next sequence number and transmits the frame. The line
// paces delivery: at the configured baud each byte occupies the wire for
// its bit time, so a saturated link delays or drops frames — exactly the
// bandwidth ceiling of the active command interface.
func (b *Board) send(ev protocol.Event) {
	b.seq++
	ev.Seq = b.seq
	wire, err := protocol.EncodeEvent(ev)
	if err != nil {
		b.fail(err)
		return
	}
	b.portA.Send(wire)
}

// sync advances the UART line to now, reports any newly dropped frames,
// and services host instructions that have fully arrived. Called at task
// releases and RunFor boundaries; the latter keeps a halted target
// responsive to a remote Resume.
func (b *Board) sync(now uint64) {
	b.Link.Advance(now)
	b.reportDrops(now)
	_, ins := b.dec.Feed(b.portA.Recv())
	for _, in := range ins {
		b.service(in, now)
	}
}

// reportDrops publishes the TX drop counter when it has grown since the
// last report — the target-side evidence of E7b's delivered/emitted gap.
// The report is held back until the FIFO has room for its exact frame, so
// the report itself is never the next casualty of the saturation it
// describes; it runs before the deadline sites emit new signal frames, so
// a permanently saturated line still gets the counter out.
func (b *Board) reportDrops(now uint64) {
	st := b.portA.Stats()
	if st.FramesDropped == b.dropsSeen {
		return
	}
	b.seq++
	ev := protocol.Event{
		Type: protocol.EvOverrun, Seq: b.seq, Time: now, Source: b.Name,
		Arg1: "frames", Value: float64(st.FramesDropped),
	}
	wire, err := protocol.EncodeEvent(ev)
	if err != nil {
		b.seq--
		b.fail(err)
		return
	}
	if b.portA.Free() < len(wire) {
		b.seq-- // hold the report (and its sequence slot) for later
		return
	}
	b.dropsSeen = st.FramesDropped
	b.portA.Send(wire)
}

// service executes one GDM -> target instruction and acknowledges with an
// event. Since the target-resident agent exists, InSetBreak/InClearBreak
// arm and disarm on-target condition breakpoints and InStep runs to the
// next model-level event — model-level debugging no longer needs a host
// round-trip to halt the board.
func (b *Board) service(in protocol.Instruction, now uint64) {
	switch in.Type {
	case protocol.InPause:
		b.sched.Halt()
		b.send(protocol.Event{Type: protocol.EvHalted, Time: now, Source: b.Name})
	case protocol.InResume:
		b.sched.Resume()
		b.runSuspended()
		b.send(protocol.Event{Type: protocol.EvResumed, Time: now, Source: b.Name})
	case protocol.InStep:
		// Run-to-next-model-event: arm the step, then resume. A release
		// suspended at a breakpoint continues first and may complete the
		// step immediately at its next emit.
		b.agent.stepArm = true
		b.sched.Resume()
		b.runSuspended()
	case protocol.InSetBreak:
		// A malformed condition is dropped on the floor like any damaged
		// instruction; the host validated the expression before sending.
		_ = b.agent.set(in.Source, in.Arg1)
	case protocol.InClearBreak:
		b.agent.clear(in.Source)
	case protocol.InReadVar:
		b.ackWatch(in.Source, now)
	case protocol.InWriteVar:
		if idx, ok := b.Prog.Symbols.Index(in.Source); ok {
			if err := b.StoreSym(idx, value.F(in.Value)); err == nil {
				// A host write bypasses the VM's store hook; predicates
				// over the symbol fire at the next check site.
				b.agent.touch(in.Source)
				b.ackWatch(in.Source, now)
			}
		}
	}
}

// ackWatch answers a variable read/write instruction with the symbol's
// current RAM value.
func (b *Board) ackWatch(symbol string, now uint64) {
	idx, ok := b.Prog.Symbols.Index(symbol)
	if !ok {
		return
	}
	v, err := b.LoadSym(idx)
	if err != nil {
		return
	}
	b.send(protocol.Event{
		Type: protocol.EvWatch, Time: now, Source: symbol,
		Arg2: v.String(), Value: v.Float(),
	})
}

// fail records the first firmware error (surfaced through Err).
func (b *Board) fail(err error) {
	if b.lastErr == nil {
		b.lastErr = err
	}
}
