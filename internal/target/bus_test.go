package target

import (
	"encoding/json"
	"testing"

	"repro/internal/dtm"
	"repro/internal/protocol"
	"repro/models"
)

// tdmaCluster builds the two-node distributed model on a TDMA bus.
func tdmaCluster(t testing.TB, bus *dtm.BusSchedule, latencyNs uint64) *Cluster {
	t.Helper()
	sys, err := models.Distributed()
	if err != nil {
		t.Fatal(err)
	}
	// A fast line so the per-departure EvBusSlot frames never saturate the
	// UART FIFO (frame-atomic serial drops are their own test elsewhere).
	cl, err := BuildCluster(sys, ClusterConfig{LatencyNs: latencyNs, Bus: bus, Board: Config{Baud: 2_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// twoNodeBus is the standard test schedule: nodeA then nodeB, 100 µs slots,
// 50 µs gaps — a 300 µs TDMA cycle anchored at t = 0.
func twoNodeBus() *dtm.BusSchedule {
	return &dtm.BusSchedule{
		Slots: []dtm.BusSlot{{Owner: "nodeA", LenNs: 100_000}, {Owner: "nodeB", LenNs: 100_000}},
		GapNs: 50_000,
	}
}

// TestClusterTDMADeliveryOnSlotGrid pins the distributed latching instant
// under the bus: the producer latches v=1 at t = 1 ms, which falls in
// nodeB's slot — the frame waits for nodeA's next slot at 1.2 ms and the
// consumer input changes at exactly 1.2 ms + propagation, not at
// publish + latency as on the constant-latency network.
func TestClusterTDMADeliveryOnSlotGrid(t *testing.T) {
	const latency = 100_000
	cl := tdmaCluster(t, twoNodeBus(), latency)
	nodeB := cl.Boards["nodeB"]
	idx, ok := nodeB.Prog.Symbols.Index("consumer.v__io")
	if !ok {
		t.Fatal("consumer input symbol missing")
	}
	read := func() float64 {
		v, err := nodeB.LoadSym(idx)
		if err != nil {
			t.Fatal(err)
		}
		return v.Float()
	}
	// 1 ms (publish) + latency would be 1.1 ms — the TDMA bus must hold the
	// frame in nodeA's TX queue until the 1.2 ms slot.
	cl.RunUntil(1_000_000 + latency)
	if got := read(); got != 0 {
		t.Fatalf("value %v arrived at publish+latency — slot schedule not applied", got)
	}
	cl.RunUntil(1_300_000 - 1)
	if got := read(); got != 0 {
		t.Fatalf("value %v arrived before slot start + propagation", got)
	}
	cl.RunUntil(1_300_000)
	if got := read(); got != 1 {
		t.Fatalf("value = %v at slot+propagation, want 1", got)
	}
	st, ok := cl.BusStats("nodeA")
	if !ok {
		t.Fatal("nodeA unknown to the bus")
	}
	if st.Enqueued != 1 || st.Delivered != 1 || st.WorstQueueNs != 200_000 {
		t.Fatalf("nodeA stats = %+v (want 200 µs queueing: published 1.0, departed 1.2)", st)
	}
}

// TestClusterTDMAEndToEnd: the doubled ramp still crosses the bus — slower
// (one frame per owned slot) but uncorrupted and in order.
func TestClusterTDMAEndToEnd(t *testing.T) {
	cl := tdmaCluster(t, twoNodeBus(), 100_000)
	cl.RunUntil(100_000_000)
	a, err := cl.Boards["nodeA"].ReadOutput("producer", "v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Boards["nodeB"].ReadOutput("consumer", "twice")
	if err != nil {
		t.Fatal(err)
	}
	if a.Float() < 40 || b.Float() < 2*a.Float()-10 || b.Float() > 2*a.Float() {
		t.Errorf("ramp broken on the bus: producer %v, consumer %v", a, b)
	}
	st, ok := cl.BusStats("nodeA")
	if !ok {
		t.Fatal("nodeA unknown to the bus")
	}
	if st.Delivered == 0 || st.Dropped != 0 || st.Delivered != cl.Net.Sent {
		t.Errorf("bus stats = %+v (sent %d)", st, cl.Net.Sent)
	}
	for _, n := range cl.Nodes() {
		if err := cl.Boards[n].Err(); err != nil {
			t.Errorf("node %s: %v", n, err)
		}
	}
}

// TestClusterTDMABusEventsAndDropCounter: under seeded loss the sending
// board announces every departure with EvBusSlot and every loss with
// EvFrameDropped, and mirrors the cumulative drop count into its
// __busdrops RAM symbol (JTAG-visible, zero instrumentation cost).
func TestClusterTDMABusEventsAndDropCounter(t *testing.T) {
	bus := twoNodeBus()
	bus.LossPerMille = 400
	bus.Seed = 7
	cl := tdmaCluster(t, bus, 100_000)
	nodeA := cl.Boards["nodeA"]

	var slots, drops int
	var lastDropTotal float64
	var dec protocol.Decoder
	for i := 0; i < 100; i++ {
		cl.RunUntil(cl.Now() + 1_000_000)
		evs, _ := dec.Feed(nodeA.HostPort().Recv())
		for _, ev := range evs {
			switch ev.Type {
			case protocol.EvBusSlot:
				slots++
				if ev.Source != "nodeA" || ev.Arg1 != "v_sig" {
					t.Fatalf("EvBusSlot = %+v", ev)
				}
			case protocol.EvFrameDropped:
				drops++
				lastDropTotal = ev.Value
			}
		}
	}
	st, ok := cl.BusStats("nodeA")
	if !ok {
		t.Fatal("nodeA unknown to the bus")
	}
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("degenerate loss run: %+v", st)
	}
	if uint64(slots) != st.Enqueued || uint64(drops) != st.Dropped {
		t.Fatalf("events: %d slots / %d drops, stats %+v", slots, drops, st)
	}
	if lastDropTotal != float64(st.Dropped) {
		t.Fatalf("EvFrameDropped cumulative total %v != %d", lastDropTotal, st.Dropped)
	}
	if nodeA.Prog.BusDropSym < 0 {
		t.Fatal("TDMA cluster program compiled without __busdrops")
	}
	v, err := nodeA.LoadSym(nodeA.Prog.BusDropSym)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(v.Int()) != st.Dropped {
		t.Fatalf("__busdrops RAM = %v, stats say %d", v, st.Dropped)
	}
}

// TestClusterTDMABreakOnBusDrop arms an on-target condition over the
// __busdrops counter: the sending board halts at the very slot that lost
// the frame, with an EvBreak naming the counter.
func TestClusterTDMABreakOnBusDrop(t *testing.T) {
	bus := twoNodeBus()
	bus.LossPerMille = 400
	bus.Seed = 7
	cl := tdmaCluster(t, bus, 100_000)
	nodeA := cl.Boards["nodeA"]
	sendIn(t, nodeA, protocol.Instruction{Type: protocol.InSetBreak, Source: "bus-drop", Arg1: "__busdrops > 0"})

	var hit *protocol.Event
	var dec protocol.Decoder
	for i := 0; i < 200 && hit == nil; i++ {
		cl.RunUntil(cl.Now() + 1_000_000)
		evs, _ := dec.Feed(nodeA.HostPort().Recv())
		for _, ev := range evs {
			if ev.Type == protocol.EvBreak {
				ev := ev
				hit = &ev
			}
		}
	}
	if hit == nil {
		t.Fatal("40% loss never tripped the __busdrops breakpoint")
	}
	if hit.Source != "bus-drop" || hit.Arg1 != "__busdrops" {
		t.Fatalf("EvBreak = %+v", hit)
	}
	if !nodeA.Halted() {
		t.Fatal("sender not halted at the dropping slot")
	}
	if cl.Boards["nodeB"].Halted() {
		t.Fatal("consumer node halted by the sender's breakpoint")
	}
}

// TestClusterTDMAProducerNeedsSlot: a schedule that never grants the
// producing node a slot is refused at build time.
func TestClusterTDMAProducerNeedsSlot(t *testing.T) {
	sys, err := models.Distributed()
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildCluster(sys, ClusterConfig{
		Bus: &dtm.BusSchedule{Slots: []dtm.BusSlot{{Owner: "nodeB", LenNs: 100_000}}},
	})
	if err == nil {
		t.Fatal("BuildCluster accepted a bus schedule with no slot for the producer")
	}
}

// TestClusterTDMACheckpointMidCycle: a snapshot taken with one frame on
// the wire and another still queued restores — through the serialized form
// — into a freshly built cluster whose continuation ends byte-identical to
// the uninterrupted run.
func TestClusterTDMACheckpointMidCycle(t *testing.T) {
	// Cycle 2 ms, nodeA's slot at offset 1.2 ms, propagation 2.5 ms:
	// publish k lands at 1+2k ms, departs at 1.2+2k ms, arrives 3.7+2k ms —
	// so at 3.1 ms frame 0 is still on the wire and frame 1 is queued.
	mk := func() *dtm.BusSchedule {
		return &dtm.BusSchedule{
			Slots: []dtm.BusSlot{
				{Owner: "nodeB", LenNs: 1_100_000},
				{Owner: "nodeA", LenNs: 800_000},
			},
			GapNs: 50_000, JitterNs: 40_000, Seed: 11,
		}
	}
	const cut, end = 3_100_000, 60_000_000

	full := tdmaCluster(t, mk(), 2_500_000)
	full.RunUntil(end)
	fullFinal, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	orig := tdmaCluster(t, mk(), 2_500_000)
	orig.RunUntil(cut)
	cs, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if orig.Net.Queued() == 0 || orig.Net.Inflight() == orig.Net.Queued() {
		t.Fatalf("cut not mid-cycle: queued=%d inflight=%d", orig.Net.Queued(), orig.Net.Inflight())
	}
	blob, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}

	fresh := tdmaCluster(t, mk(), 2_500_000)
	var decoded ClusterState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	fresh.RunUntil(end)
	freshFinal, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(fullFinal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(freshFinal)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("restored cluster's final state diverges from the uninterrupted run")
	}
}
