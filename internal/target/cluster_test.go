package target

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/value"
	"repro/models"
)

func distCluster(t testing.TB, latencyNs uint64) *Cluster {
	t.Helper()
	sys, err := models.Distributed()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := BuildCluster(sys, ClusterConfig{LatencyNs: latencyNs})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestClusterTopology(t *testing.T) {
	cl := distCluster(t, 300_000)
	nodes := cl.Nodes()
	if len(nodes) != 2 || nodes[0] != "nodeA" || nodes[1] != "nodeB" {
		t.Fatalf("nodes = %v", nodes)
	}
	for _, n := range nodes {
		if cl.Boards[n] == nil || cl.Board(n) != cl.Boards[n] {
			t.Fatalf("board %s missing", n)
		}
	}
	if cl.Board("ghost") != nil {
		t.Error("ghost board")
	}
	// Each node's program contains only its own actors.
	if cl.Boards["nodeA"].Prog.Unit("consumer") != nil {
		t.Error("consumer compiled onto nodeA")
	}
	if cl.Boards["nodeB"].Prog.Unit("producer") != nil {
		t.Error("producer compiled onto nodeB")
	}
	if cl.Now() != 0 {
		t.Errorf("fresh cluster time = %d", cl.Now())
	}
}

func TestClusterSharedClock(t *testing.T) {
	cl := distCluster(t, 300_000)
	cl.RunUntil(7_500_000)
	if cl.Now() != 7_500_000 {
		t.Fatalf("cluster time = %d", cl.Now())
	}
	for _, n := range cl.Nodes() {
		if cl.Boards[n].Now() != 7_500_000 {
			t.Errorf("board %s time = %d, want shared 7500000", n, cl.Boards[n].Now())
		}
	}
}

// TestClusterLatencyOrdering pins the cross-node delivery instant: the
// producer latches v=1 at its first deadline (t = 1 ms), so the consumer's
// __io input must change exactly LatencyNs later and not before.
func TestClusterLatencyOrdering(t *testing.T) {
	const latency = 300_000
	cl := distCluster(t, latency)
	nodeB := cl.Boards["nodeB"]
	idx, ok := nodeB.Prog.Symbols.Index("consumer.v__io")
	if !ok {
		t.Fatal("consumer input symbol missing")
	}
	read := func() float64 {
		v, err := nodeB.LoadSym(idx)
		if err != nil {
			t.Fatal(err)
		}
		return v.Float()
	}
	cl.RunUntil(1_000_000 + latency - 1)
	if got := read(); got != 0 {
		t.Fatalf("value %v arrived before latency elapsed", got)
	}
	cl.RunUntil(1_000_000 + latency)
	if got := read(); got != 1 {
		t.Fatalf("value = %v at t=deadline+latency, want 1", got)
	}
	if cl.Net.Sent == 0 {
		t.Error("network counted no messages")
	}

	// Successive publishes arrive in order: sample the consumer input at
	// each of its releases and require a non-decreasing ramp.
	var seen []float64
	nodeB.PreLatch = func(now uint64, actor string) {
		seen = append(seen, read())
	}
	cl.RunUntil(cl.Now() + 40_000_000)
	if len(seen) == 0 {
		t.Fatal("consumer never released")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("deliveries reordered: %v", seen)
		}
	}
	if seen[len(seen)-1] <= seen[0] {
		t.Error("ramp never advanced across the network")
	}
}

// TestClusterEndToEnd reproduces the distributed example's observable
// outcome: the consumer doubles the producer's ramp, passively and with
// zero instrumentation.
func TestClusterEndToEnd(t *testing.T) {
	cl := distCluster(t, 300_000)
	cl.RunUntil(100_000_000)
	a, err := cl.Boards["nodeA"].ReadOutput("producer", "v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.Boards["nodeB"].ReadOutput("consumer", "twice")
	if err != nil {
		t.Fatal(err)
	}
	if a.Float() < 40 {
		t.Errorf("producer ramp = %v after 100 ms (50 periods)", a)
	}
	if b.Float() < 2*a.Float()-10 || b.Float() > 2*a.Float() {
		t.Errorf("consumer %v should track ~2x producer %v (pipeline lag allowed)", b, a)
	}
	for _, n := range cl.Nodes() {
		if ic := cl.Boards[n].InstrumentationCycles(); ic != 0 {
			t.Errorf("node %s instrumentation cycles = %d on clean build", n, ic)
		}
		if err := cl.Boards[n].Err(); err != nil {
			t.Errorf("node %s error: %v", n, err)
		}
	}
	if int(cl.Net.Sent) < 40 {
		t.Errorf("network messages = %d, want one per producer deadline", cl.Net.Sent)
	}
}

func TestClusterDefaultLatency(t *testing.T) {
	cl := distCluster(t, 0)
	if cl.Net.LatencyNs != DefaultLatencyNs {
		t.Errorf("default latency = %d, want %d", cl.Net.LatencyNs, DefaultLatencyNs)
	}
}

// TestClusterRemoteNodeBreak arms an on-target breakpoint over a remote
// node's UART: the breakpoint must halt *that node's board* while its
// siblings (sharing the same kernel) keep executing.
func TestClusterRemoteNodeBreak(t *testing.T) {
	cl := distCluster(t, 300_000)
	nodeA, nodeB := cl.Boards["nodeA"], cl.Boards["nodeB"]
	sendIn(t, nodeB, protocol.Instruction{Type: protocol.InSetBreak, Source: "remote-bp", Arg1: "consumer.v >= 8"})
	var dec protocol.Decoder
	var breakEv *protocol.Event
	for i := 0; i < 100 && breakEv == nil; i++ {
		cl.RunUntil(cl.Now() + 1_000_000)
		evs, _ := dec.Feed(nodeB.HostPort().Recv())
		for _, ev := range evs {
			if ev.Type == protocol.EvBreak {
				ev := ev
				breakEv = &ev
			}
		}
	}
	if breakEv == nil {
		t.Fatal("remote node never hit the breakpoint")
	}
	if !nodeB.Halted() {
		t.Fatal("nodeB not halted at its breakpoint")
	}
	if nodeA.Halted() {
		t.Fatal("breakpoint on nodeB halted nodeA")
	}
	if breakEv.Source != "remote-bp" {
		t.Errorf("EvBreak source = %q", breakEv.Source)
	}
	// The rest of the cluster keeps running on the shared clock.
	frozenB, runningA := nodeB.Cycles(), nodeA.Cycles()
	cl.RunUntil(cl.Now() + 20_000_000)
	if nodeB.Cycles() != frozenB {
		t.Error("halted node kept executing")
	}
	if nodeA.Cycles() <= runningA {
		t.Error("sibling node stopped executing")
	}
	// Clear + resume over the same wire revives the node.
	sendIn(t, nodeB, protocol.Instruction{Type: protocol.InClearBreak, Source: "remote-bp"})
	sendIn(t, nodeB, protocol.Instruction{Type: protocol.InResume})
	cl.RunUntil(cl.Now() + 10_000_000)
	if nodeB.Halted() {
		t.Fatal("remote resume not serviced")
	}
	// The resume was serviced at the window's final sync; the next window
	// runs the revived release schedule.
	cl.RunUntil(cl.Now() + 10_000_000)
	if nodeB.Cycles() <= frozenB {
		t.Error("resume did not restart the node")
	}
	for _, n := range cl.Nodes() {
		if err := cl.Boards[n].Err(); err != nil {
			t.Errorf("node %s error: %v", n, err)
		}
	}
}

// TestClusterCrossNodeRelatch pins the re-latching rule: a host-injected
// __io value on a consumer input is overwritten from the node's inbox
// store at the very next release, so stale injections cannot outlive one
// period when a network value exists — reference interpreter semantics.
func TestClusterCrossNodeRelatch(t *testing.T) {
	cl := distCluster(t, 300_000)
	nodeB := cl.Boards["nodeB"]
	ioIdx, ok := nodeB.Prog.Symbols.Index("consumer.v__io")
	if !ok {
		t.Fatal("consumer __io symbol missing")
	}
	latchedIdx, ok := nodeB.Prog.Symbols.Index("consumer.v")
	if !ok {
		t.Fatal("consumer latched symbol missing")
	}
	// Let a few network deliveries land first.
	cl.RunUntil(10_000_000)
	before, err := nodeB.LoadSym(latchedIdx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Float() == 0 {
		t.Fatal("no network value crossed before injection")
	}
	// Inject a bogus value into the __io slot mid-period.
	if err := nodeB.WriteInput("consumer", "v", value.F(999)); err != nil {
		t.Fatal(err)
	}
	v, _ := nodeB.LoadSym(ioIdx)
	if v.Float() != 999 {
		t.Fatalf("injection did not land: %v", v)
	}
	// Consumer releases at 1.5 ms + k·2 ms; run across the next release.
	cl.RunUntil(12_000_000)
	got, err := nodeB.LoadSym(latchedIdx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() == 999 {
		t.Fatal("stale injected value survived the release re-latch")
	}
	if got.Float() < before.Float() {
		t.Errorf("latched ramp went backwards: %v -> %v", before, got)
	}
}
