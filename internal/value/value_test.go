package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Float: "float", Int: "int", Bool: "bool", String: "string", Invalid: "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"float": Float, "float64": Float, "real": Float, "double": Float,
		"int": Int, "int64": Int, "integer": Int,
		"bool": Bool, "boolean": Bool,
		"string": String,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("complex"); err == nil {
		t.Error("ParseKind(complex) should fail")
	}
}

func TestAccessors(t *testing.T) {
	if F(2.5).Float() != 2.5 || F(2.5).Int() != 2 || !F(2.5).Bool() {
		t.Error("float accessors wrong")
	}
	if I(7).Int() != 7 || I(7).Float() != 7.0 || !I(7).Bool() {
		t.Error("int accessors wrong")
	}
	if !B(true).Bool() || B(true).Int() != 1 || B(false).Float() != 0 {
		t.Error("bool accessors wrong")
	}
	if S("x").Str() != "x" || !S("x").Bool() || S("").Bool() {
		t.Error("string accessors wrong")
	}
	var zero Value
	if zero.IsValid() || zero.Bool() || zero.Float() != 0 || zero.Int() != 0 {
		t.Error("zero Value should be invalid and falsy")
	}
}

func TestStringParseRoundtrip(t *testing.T) {
	vals := []Value{F(3.14159), F(-0.5), I(42), I(-1), B(true), B(false), S("hello world")}
	for _, v := range vals {
		got, err := Parse(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("Parse(%v, %q): %v", v.Kind(), v.String(), err)
		}
		if !Equal(got, v) {
			t.Errorf("roundtrip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(Float, "abc"); err == nil {
		t.Error("Parse(Float, abc) should fail")
	}
	if _, err := Parse(Int, "1.5"); err == nil {
		t.Error("Parse(Int, 1.5) should fail")
	}
	if _, err := Parse(Bool, "maybe"); err == nil {
		t.Error("Parse(Bool, maybe) should fail")
	}
	if _, err := Parse(Invalid, "x"); err == nil {
		t.Error("Parse(Invalid) should fail")
	}
}

func TestArithIntStaysInt(t *testing.T) {
	got, err := Arith('+', I(2), I(3))
	if err != nil || got.Kind() != Int || got.Int() != 5 {
		t.Fatalf("2+3 = %v, %v", got, err)
	}
	got, _ = Arith('/', I(7), I(2))
	if got.Kind() != Int || got.Int() != 3 {
		t.Errorf("7/2 = %v, want int 3", got)
	}
	got, _ = Arith('%', I(7), I(2))
	if got.Int() != 1 {
		t.Errorf("7%%2 = %v, want 1", got)
	}
}

func TestArithPromotion(t *testing.T) {
	got, err := Arith('*', I(2), F(1.5))
	if err != nil || got.Kind() != Float || got.Float() != 3.0 {
		t.Fatalf("2*1.5 = %v, %v; want float 3", got, err)
	}
	got, _ = Arith('%', F(7.5), F(2))
	if math.Abs(got.Float()-1.5) > 1e-12 {
		t.Errorf("7.5 mod 2 = %v, want 1.5", got)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith('+', S("a"), I(1)); err == nil {
		t.Error("string arithmetic should fail")
	}
	if _, err := Arith('/', I(1), I(0)); err == nil {
		t.Error("int div by zero should fail")
	}
	if _, err := Arith('/', F(1), F(0)); err == nil {
		t.Error("float div by zero should fail")
	}
	if _, err := Arith('%', I(1), I(0)); err == nil {
		t.Error("int mod by zero should fail")
	}
	if _, err := Arith('%', F(1), F(0)); err == nil {
		t.Error("float mod by zero should fail")
	}
	if _, err := Arith('?', I(1), I(1)); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := Arith('?', F(1), F(1)); err == nil {
		t.Error("unknown float op should fail")
	}
}

func TestNeg(t *testing.T) {
	if v, err := Neg(I(3)); err != nil || v.Int() != -3 {
		t.Errorf("Neg(3) = %v, %v", v, err)
	}
	if v, err := Neg(F(2.5)); err != nil || v.Float() != -2.5 {
		t.Errorf("Neg(2.5) = %v, %v", v, err)
	}
	if _, err := Neg(B(true)); err == nil {
		t.Error("Neg(bool) should fail")
	}
}

func TestCompare(t *testing.T) {
	type tc struct {
		a, b Value
		want int
	}
	for _, c := range []tc{
		{I(1), I(2), -1}, {I(2), I(2), 0}, {F(2.5), I(2), 1},
		{S("a"), S("b"), -1}, {S("b"), S("b"), 0}, {S("c"), S("b"), 1},
		{B(false), B(true), -1}, {B(true), B(true), 0},
	} {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(S("a"), I(1)); err == nil {
		t.Error("Compare(string,int) should fail")
	}
}

func TestEqualAndConvert(t *testing.T) {
	if !Equal(I(2), F(2)) {
		t.Error("2 == 2.0 should hold")
	}
	if Equal(S("2"), I(2)) {
		t.Error("\"2\" != 2")
	}
	v, err := Convert(F(3.9), Int)
	if err != nil || v.Int() != 3 {
		t.Errorf("Convert(3.9, Int) = %v, %v", v, err)
	}
	v, _ = Convert(I(0), Bool)
	if v.Bool() {
		t.Error("Convert(0, Bool) should be false")
	}
	v, _ = Convert(B(true), String)
	if v.Str() != "true" {
		t.Errorf("Convert(true, String) = %q", v.Str())
	}
	if v, err := Convert(I(1), Int); err != nil || v.Int() != 1 {
		t.Error("identity convert failed")
	}
	if _, err := Convert(I(1), Invalid); err == nil {
		t.Error("Convert to Invalid should fail")
	}
}

func TestZero(t *testing.T) {
	if Zero(Float).Float() != 0 || Zero(Int).Int() != 0 || Zero(Bool).Bool() || Zero(String).Str() != "" {
		t.Error("Zero values wrong")
	}
}

// Property: arithmetic on Int values matches Go int64 arithmetic.
func TestQuickIntArith(t *testing.T) {
	f := func(a, b int64) bool {
		sum, err := Arith('+', I(a), I(b))
		if err != nil || sum.Int() != a+b {
			return false
		}
		prod, err := Arith('*', I(a), I(b))
		if err != nil || prod.Int() != a*b {
			return false
		}
		if b != 0 {
			q, err := Arith('/', I(a), I(b))
			if err != nil || q.Int() != a/b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal is reflexive for floats.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ab, err1 := Compare(F(a), F(b))
		ba, err2 := Compare(F(b), F(a))
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == -ba && Equal(F(a), F(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse roundtrip for floats (excluding NaN).
func TestQuickFloatRoundtrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		v, err := Parse(Float, F(x).String())
		return err == nil && v.Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
