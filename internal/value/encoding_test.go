package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByteSize(t *testing.T) {
	if ByteSize(Float) != 8 || ByteSize(Int) != 8 || ByteSize(Bool) != 1 {
		t.Error("sizes wrong")
	}
	if ByteSize(String) != 0 || ByteSize(Invalid) != 0 {
		t.Error("unrepresentable kinds should be 0")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	vals := []Value{F(3.14), F(-0.0), F(math.Inf(1)), I(42), I(-7), B(true), B(false)}
	buf := make([]byte, 8)
	for _, v := range vals {
		n, err := EncodeBytes(v, buf)
		if err != nil {
			t.Fatalf("EncodeBytes(%v): %v", v, err)
		}
		got, err := DecodeBytes(v.Kind(), buf[:n])
		if err != nil {
			t.Fatalf("DecodeBytes(%v): %v", v, err)
		}
		if got.Kind() != v.Kind() || got.String() != v.String() {
			t.Errorf("roundtrip %v -> %v", v, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	buf := make([]byte, 8)
	if _, err := EncodeBytes(S("x"), buf); err == nil {
		t.Error("string encode should fail")
	}
	if _, err := EncodeBytes(F(1), buf[:4]); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := DecodeBytes(String, buf); err == nil {
		t.Error("string decode should fail")
	}
	if _, err := DecodeBytes(Float, buf[:4]); err == nil {
		t.Error("short decode should fail")
	}
}

func TestQuickEncodingRoundtrip(t *testing.T) {
	buf := make([]byte, 8)
	ff := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		if _, err := EncodeBytes(F(x), buf); err != nil {
			return false
		}
		v, err := DecodeBytes(Float, buf)
		return err == nil && v.Float() == x
	}
	fi := func(x int64) bool {
		if _, err := EncodeBytes(I(x), buf); err != nil {
			return false
		}
		v, err := DecodeBytes(Int, buf)
		return err == nil && v.Int() == x
	}
	if err := quick.Check(ff, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(fi, nil); err != nil {
		t.Error(err)
	}
}
