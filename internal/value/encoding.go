package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Byte-level encoding of values as they are laid out in the simulated
// target's RAM. The code generator allocates each signal and state
// variable a fixed address and size; the JTAG watch engine reads those
// same bytes back and decodes them with DecodeBytes — which is exactly how
// the paper's passive command interface recovers model-level values from
// raw chip memory.
//
// Layout (little-endian, matching common embedded targets):
//
//	Float  8 bytes  IEEE-754 bits
//	Int    8 bytes  two's complement
//	Bool   1 byte   0 or 1
//	String not RAM-representable (models carry scalars at runtime)

// ByteSize returns the RAM footprint of kind k, or 0 if not representable.
func ByteSize(k Kind) int {
	switch k {
	case Float, Int:
		return 8
	case Bool:
		return 1
	default:
		return 0
	}
}

// EncodeBytes writes v into dst (which must be at least ByteSize large)
// and returns the number of bytes written.
func EncodeBytes(v Value, dst []byte) (int, error) {
	n := ByteSize(v.Kind())
	if n == 0 {
		return 0, fmt.Errorf("value: kind %v has no byte encoding", v.Kind())
	}
	if len(dst) < n {
		return 0, fmt.Errorf("value: buffer %d too small for %v (%d)", len(dst), v.Kind(), n)
	}
	switch v.Kind() {
	case Float:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.Float()))
	case Int:
		binary.LittleEndian.PutUint64(dst, uint64(v.Int()))
	case Bool:
		if v.Bool() {
			dst[0] = 1
		} else {
			dst[0] = 0
		}
	}
	return n, nil
}

// Encoded is the portable, JSON-friendly form of a Value used by the
// checkpoint subsystem: kind name plus the stable textual form produced by
// Value.String. Float text is the shortest round-tripping representation,
// so Decode(Encode(v)) is bit-exact for every representable value.
type Encoded struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

// Encode converts a Value to its portable form. The zero (Invalid) Value
// encodes to the zero Encoded and decodes back to it.
func Encode(v Value) Encoded {
	if !v.IsValid() {
		return Encoded{}
	}
	return Encoded{K: v.Kind().String(), V: v.String()}
}

// Decode converts the portable form back to a Value.
func Decode(e Encoded) (Value, error) {
	if e.K == "" || e.K == "invalid" {
		return Value{}, nil
	}
	k, err := ParseKind(e.K)
	if err != nil {
		return Value{}, err
	}
	return Parse(k, e.V)
}

// EncodeMap deep-copies a signal map into its portable form (nil in, nil
// out). The copy shares nothing with the input, so a restore can never
// alias live state.
func EncodeMap(m map[string]Value) map[string]Encoded {
	if m == nil {
		return nil
	}
	out := make(map[string]Encoded, len(m))
	for k, v := range m {
		out[k] = Encode(v)
	}
	return out
}

// DecodeMap converts a portable signal map back into live values.
func DecodeMap(m map[string]Encoded) (map[string]Value, error) {
	if m == nil {
		return nil, nil
	}
	out := make(map[string]Value, len(m))
	for k, e := range m {
		v, err := Decode(e)
		if err != nil {
			return nil, fmt.Errorf("value: map key %q: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// DecodeBytes reads a value of kind k from src.
func DecodeBytes(k Kind, src []byte) (Value, error) {
	n := ByteSize(k)
	if n == 0 {
		return Value{}, fmt.Errorf("value: kind %v has no byte encoding", k)
	}
	if len(src) < n {
		return Value{}, fmt.Errorf("value: buffer %d too small for %v (%d)", len(src), k, n)
	}
	switch k {
	case Float:
		return F(math.Float64frombits(binary.LittleEndian.Uint64(src))), nil
	case Int:
		return I(int64(binary.LittleEndian.Uint64(src))), nil
	default: // Bool
		return B(src[0] != 0), nil
	}
}
