// Package value defines the tagged scalar values that flow through COMDES
// signals, expression evaluation, and the debugger command payloads.
//
// COMDES signals are strongly typed scalars (the paper's models carry
// temperatures, set-points, discrete modes and boolean flags). A Value is a
// small immutable tagged union over float64, int64, bool and string with
// the arithmetic and comparison semantics shared by the expression language
// (internal/expr) and the generated code (internal/codegen).
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	Invalid Kind = iota
	Float
	Int
	Bool
	String
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Bool:
		return "bool"
	case String:
		return "string"
	default:
		return "invalid"
	}
}

// ParseKind converts a kind name (as used in model files) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "float", "float64", "real", "double":
		return Float, nil
	case "int", "int64", "integer":
		return Int, nil
	case "bool", "boolean":
		return Bool, nil
	case "string":
		return String, nil
	}
	return Invalid, fmt.Errorf("value: unknown kind %q", s)
}

// Value is an immutable tagged scalar. The zero Value has Kind Invalid.
type Value struct {
	kind Kind
	f    float64
	i    int64
	b    bool
	s    string
}

// Of constructs values of each kind.
func Of(k Kind) Value { return Value{kind: k} }

// F returns a Float value.
func F(v float64) Value { return Value{kind: Float, f: v} }

// I returns an Int value.
func I(v int64) Value { return Value{kind: Int, i: v} }

// B returns a Bool value.
func B(v bool) Value { return Value{kind: Bool, b: v} }

// S returns a String value.
func S(v string) Value { return Value{kind: String, s: v} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds a value of a known kind.
func (v Value) IsValid() bool { return v.kind != Invalid }

// Float returns the value as float64, converting Int and Bool.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Int returns the value as int64, truncating Float toward zero.
func (v Value) Int() int64 {
	switch v.kind {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Bool returns the value interpreted as a truth value: non-zero numbers and
// non-empty strings are true.
func (v Value) Bool() bool {
	switch v.kind {
	case Bool:
		return v.b
	case Int:
		return v.i != 0
	case Float:
		return v.f != 0
	case String:
		return v.s != ""
	default:
		return false
	}
}

// Str returns the underlying string for String values and a formatted
// representation otherwise.
func (v Value) Str() string {
	if v.kind == String {
		return v.s
	}
	return v.String()
}

// String implements fmt.Stringer with a stable textual form used in traces
// and rendered labels.
func (v Value) String() string {
	switch v.kind {
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Bool:
		return strconv.FormatBool(v.b)
	case String:
		return v.s
	default:
		return "<invalid>"
	}
}

// Parse parses the textual form produced by String back into a Value of the
// given kind.
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case Float:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad float %q: %w", s, err)
		}
		return F(f), nil
	case Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad int %q: %w", s, err)
		}
		return I(i), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad bool %q: %w", s, err)
		}
		return B(b), nil
	case String:
		return S(s), nil
	}
	return Value{}, fmt.Errorf("value: cannot parse kind %v", k)
}

// numeric reports whether the kind takes part in arithmetic.
func numeric(k Kind) bool { return k == Float || k == Int }

// Numeric reports whether v is a Float or Int.
func (v Value) Numeric() bool { return numeric(v.kind) }

// promote decides the arithmetic result kind for two numeric operands:
// Int op Int stays Int, anything involving Float becomes Float.
func promote(a, b Value) Kind {
	if a.kind == Float || b.kind == Float {
		return Float
	}
	return Int
}

// Arith applies a binary arithmetic operator (+ - * / %) with numeric
// promotion. Division of two Ints is integer division; % requires Ints or
// uses math.Mod for floats. Division by zero returns an error.
func Arith(op byte, a, b Value) (Value, error) {
	if !a.Numeric() || !b.Numeric() {
		return Value{}, fmt.Errorf("value: arithmetic %c on non-numeric %v, %v", op, a.kind, b.kind)
	}
	if promote(a, b) == Int {
		x, y := a.Int(), b.Int()
		switch op {
		case '+':
			return I(x + y), nil
		case '-':
			return I(x - y), nil
		case '*':
			return I(x * y), nil
		case '/':
			if y == 0 {
				return Value{}, fmt.Errorf("value: integer division by zero")
			}
			return I(x / y), nil
		case '%':
			if y == 0 {
				return Value{}, fmt.Errorf("value: integer modulo by zero")
			}
			return I(x % y), nil
		}
		return Value{}, fmt.Errorf("value: unknown operator %c", op)
	}
	x, y := a.Float(), b.Float()
	switch op {
	case '+':
		return F(x + y), nil
	case '-':
		return F(x - y), nil
	case '*':
		return F(x * y), nil
	case '/':
		if y == 0 {
			return Value{}, fmt.Errorf("value: division by zero")
		}
		return F(x / y), nil
	case '%':
		if y == 0 {
			return Value{}, fmt.Errorf("value: modulo by zero")
		}
		return F(math.Mod(x, y)), nil
	}
	return Value{}, fmt.Errorf("value: unknown operator %c", op)
}

// Neg returns the arithmetic negation of a numeric value.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case Int:
		return I(-a.i), nil
	case Float:
		return F(-a.f), nil
	}
	return Value{}, fmt.Errorf("value: negation of %v", a.kind)
}

// Compare returns -1, 0 or +1 ordering a relative to b. Numeric kinds
// compare by promoted value; strings lexicographically; bools false<true.
// Mixed non-numeric kinds are an error.
func Compare(a, b Value) (int, error) {
	switch {
	case a.Numeric() && b.Numeric():
		x, y := a.Float(), b.Float()
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		default:
			return 0, nil
		}
	case a.kind == String && b.kind == String:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case a.kind == Bool && b.kind == Bool:
		x, y := a.Int(), b.Int()
		return int(x - y), nil
	}
	return 0, fmt.Errorf("value: cannot compare %v with %v", a.kind, b.kind)
}

// Equal reports whether two values are equal under Compare semantics;
// incomparable kinds are simply unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Zero returns the zero value of kind k (0, 0.0, false, "").
func Zero(k Kind) Value {
	return Value{kind: k}
}

// Convert coerces v to kind k using the accessor semantics above.
func Convert(v Value, k Kind) (Value, error) {
	if v.kind == k {
		return v, nil
	}
	switch k {
	case Float:
		return F(v.Float()), nil
	case Int:
		return I(v.Int()), nil
	case Bool:
		return B(v.Bool()), nil
	case String:
		return S(v.String()), nil
	}
	return Value{}, fmt.Errorf("value: cannot convert %v to %v", v.kind, k)
}
