package protocol

// Fuzz hardening for the frame decoder. The seed corpus runs as part of
// the normal test suite (`go test` executes every f.Add case), so CI
// exercises truncated frames, corrupted length bytes and interleaved
// garbage on every run; `go test -fuzz=FuzzX ./internal/protocol` digs
// deeper locally.

import (
	"bytes"
	"testing"
)

// seedFrames returns a mix of valid wire frames.
func seedFrames(t testing.TB) [][]byte {
	t.Helper()
	ev1, err := EncodeEvent(Event{Type: EvStateEnter, Seq: 7, Time: 12345, Source: "heater.thermostat", Arg1: "Heating"})
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := EncodeEvent(Event{Type: EvBreak, Seq: 8, Time: 99, Source: "bp", Arg1: "sym", Arg2: "1", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A frame whose body contains SOF and ESC bytes (stuffing stress).
	ev3, err := EncodeEvent(Event{Type: EvSignal, Seq: 0x7E7D, Time: 0x7E7D7E7D7E7D7E7D, Source: "\x7e\x7d", Value: -1})
	if err != nil {
		t.Fatal(err)
	}
	in1, err := EncodeInstruction(Instruction{Type: InSetBreak, Seq: 3, Source: "bp", Arg1: "x > 1", Value: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{ev1, ev2, ev3, in1}
}

// FuzzDecoderNeverPanics: any byte stream — truncated frames, corrupted
// lengths, pure garbage — must decode without panicking, and feeding the
// same stream byte-at-a-time must yield exactly the same messages as one
// big Feed (the decoder is a pure streaming state machine).
func FuzzDecoderNeverPanics(f *testing.F) {
	frames := seedFrames(f)
	for _, fr := range frames {
		f.Add(fr)
		f.Add(fr[:len(fr)/2])                 // truncated mid-frame
		f.Add(append([]byte{0, 1, 2}, fr...)) // leading garbage
	}
	corrupt := append([]byte(nil), frames[0]...)
	corrupt[15] ^= 0xFF // corrupted length region
	f.Add(corrupt)
	f.Add(bytes.Repeat([]byte{SOF}, 300))
	f.Add([]byte{SOF, 0x7D})
	f.Fuzz(func(t *testing.T, data []byte) {
		var whole Decoder
		evs, ins := whole.Feed(data)
		var stream Decoder
		var evs2 []Event
		var ins2 []Instruction
		for _, b := range data {
			e, i := stream.Feed([]byte{b})
			evs2 = append(evs2, e...)
			ins2 = append(ins2, i...)
		}
		if len(evs) != len(evs2) || len(ins) != len(ins2) {
			t.Fatalf("chunking changed results: %d/%d events, %d/%d instructions",
				len(evs), len(evs2), len(ins), len(ins2))
		}
		for i := range evs {
			if evs[i] != evs2[i] {
				t.Fatalf("event %d differs: %+v vs %+v", i, evs[i], evs2[i])
			}
		}
		for i := range ins {
			if ins[i] != ins2[i] {
				t.Fatalf("instruction %d differs: %+v vs %+v", i, ins[i], ins2[i])
			}
		}
		if whole.Errors != stream.Errors {
			t.Fatalf("error counts diverge: %d vs %d", whole.Errors, stream.Errors)
		}
	})
}

// FuzzDecoderResyncAfterGarbage: a valid frame is always delivered intact
// after an arbitrary garbage prefix — the raw SOF resynchronises the
// decoder no matter what state the noise left it in.
func FuzzDecoderResyncAfterGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0x7D})      // trailing ESC in the noise
	f.Add([]byte{SOF, 0x01, 0x02})       // noise that looks like a frame start
	f.Add(bytes.Repeat([]byte{SOF}, 17)) // SOF runs
	f.Add(seedFrames(f)[0][:9])          // a truncated real frame
	want := Event{Type: EvTransition, Seq: 42, Time: 777, Source: "m", Arg1: "A", Arg2: "B", Value: 3.5}
	wire, err := EncodeEvent(want)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, prefix []byte) {
		var d Decoder
		d.Feed(prefix)
		evs, _ := d.Feed(wire)
		if len(evs) == 0 {
			t.Fatalf("frame lost after %d bytes of garbage", len(prefix))
		}
		got := evs[len(evs)-1]
		if got != want {
			t.Fatalf("frame damaged by garbage prefix: %+v", got)
		}
	})
}

// FuzzDecoderRejectsCorruption: flipping any single byte of a valid frame
// must never mis-deliver a message — the CRC (or the stuffing layer)
// catches every single-byte corruption, and the decoder just counts an
// error.
func FuzzDecoderRejectsCorruption(f *testing.F) {
	wire, err := EncodeEvent(Event{Type: EvSignal, Seq: 9, Time: 5555, Source: "heater.power", Value: 100})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < len(wire); i += 7 {
		f.Add(i, byte(0xFF))
	}
	f.Add(0, byte(0x01))
	f.Add(len(wire)-1, byte(0x80))
	f.Fuzz(func(t *testing.T, pos int, mask byte) {
		if pos < 0 || pos >= len(wire) || mask == 0 {
			t.Skip()
		}
		data := append([]byte(nil), wire...)
		data[pos] ^= mask
		var d Decoder
		evs, ins := d.Feed(data)
		if len(ins) != 0 {
			t.Fatalf("corrupted event decoded as instruction: %+v", ins)
		}
		if len(evs) != 0 {
			t.Fatalf("single-byte corruption at %d (mask %#x) mis-delivered %+v", pos, mask, evs)
		}
	})
}
