// Package protocol defines the GMDF command interface: the wire vocabulary
// spoken between the executable code on the embedded target (the client)
// and the Graphical Debugger Model server (Fig. 2 B of the paper).
//
// Two message directions exist:
//
//   - Event (target → GDM): the "commands" in the paper's terminology —
//     notifications the instrumented code (active solution) or the JTAG
//     watch engine (passive solution) sends at model-significant execution
//     points: state entries, transitions, signal updates, task start and
//     deadline instants.
//   - Instruction (GDM → target): debugger control — pause, resume, step,
//     breakpoint arming, variable reads/writes.
//
// Framing is byte-oriented so it can cross the RS-232 UART byte stream:
//
//	SOF(0x7E) | type(1) | seq(2 BE) | time(8 BE ns) | len(2 BE) | payload | crc16(2 BE)
//
// The CRC-16/CCITT-FALSE covers everything between SOF and the CRC field.
// The streaming decoder resynchronises on the next SOF after any damaged
// frame, so a debugger attaching mid-stream recovers (tested by property).
package protocol

import "fmt"

// SOF is the start-of-frame marker.
const SOF = 0x7E

// MaxPayload bounds the variable part of one frame.
const MaxPayload = 1024

// EventType enumerates target → GDM notifications.
type EventType uint8

// Event types. EvWatch is produced host-side by the passive JTAG watch
// engine but shares the vocabulary so the GDM is transport-agnostic.
const (
	EvInvalid      EventType = iota
	EvHello                  // target boot/attach announcement; Source = program name
	EvStateEnter             // Source = state machine instance, Arg1 = state name
	EvTransition             // Source = machine, Arg1 = from, Arg2 = to
	EvSignal                 // Source = signal name, Value = new value
	EvTaskStart              // Source = task name (input latch instant)
	EvTaskDeadline           // Source = task name (output latch instant)
	EvBreakHit               // Source = breakpoint id; host-side halt marker (after the frame crossed the line)
	EvHalted                 // target confirms pause
	EvResumed                // target confirms resume
	EvWatch                  // Source = watched symbol, Arg1 = old, Arg2 = new, Value = new numeric
	EvBreak                  // target-resident breakpoint hit: Source = bp id, Arg1 = triggering symbol, Value = its value; target halted at the instruction
	EvStepped                // target-resident step completed: Source = board, Arg1 = model event source; target halted
	EvOverrun                // target-side UART drop counter: Source = board, Value = cumulative frames dropped
	EvPreempt                // scheduler preemption: Source = preempted task, Arg1 = preempting task, Value = cumulative preemptions
	EvDeadlineMiss           // deadline overrun, stamped at the latch instant: Source = task, Value = cumulative misses
	EvBusSlot                // TDMA bus departure: Source = sending node, Arg1 = signal, Value = global slot index
	EvFrameDropped           // TDMA bus loss, stamped at the departure slot: Source = sending node, Arg1 = signal, Value = node's cumulative drops
)

// String names the event type for traces and logs.
func (t EventType) String() string {
	switch t {
	case EvHello:
		return "Hello"
	case EvStateEnter:
		return "StateEnter"
	case EvTransition:
		return "Transition"
	case EvSignal:
		return "Signal"
	case EvTaskStart:
		return "TaskStart"
	case EvTaskDeadline:
		return "TaskDeadline"
	case EvBreakHit:
		return "BreakHit"
	case EvHalted:
		return "Halted"
	case EvResumed:
		return "Resumed"
	case EvWatch:
		return "Watch"
	case EvBreak:
		return "Break"
	case EvStepped:
		return "Stepped"
	case EvOverrun:
		return "Overrun"
	case EvPreempt:
		return "Preempt"
	case EvDeadlineMiss:
		return "DeadlineMiss"
	case EvBusSlot:
		return "BusSlot"
	case EvFrameDropped:
		return "FrameDropped"
	default:
		return fmt.Sprintf("EventType(%d)", t)
	}
}

// Event is one target → GDM notification.
type Event struct {
	Type   EventType
	Seq    uint16
	Time   uint64 // target virtual time, nanoseconds
	Source string // originating model element (machine, signal, task, bp id)
	Arg1   string
	Arg2   string
	Value  float64
}

// String renders a compact human-readable form used in traces.
func (e Event) String() string {
	switch e.Type {
	case EvStateEnter:
		return fmt.Sprintf("[%d ns] %s: enter %s", e.Time, e.Source, e.Arg1)
	case EvTransition:
		return fmt.Sprintf("[%d ns] %s: %s -> %s", e.Time, e.Source, e.Arg1, e.Arg2)
	case EvSignal:
		return fmt.Sprintf("[%d ns] %s = %g", e.Time, e.Source, e.Value)
	case EvWatch:
		return fmt.Sprintf("[%d ns] watch %s: %s -> %s", e.Time, e.Source, e.Arg1, e.Arg2)
	case EvBreak:
		return fmt.Sprintf("[%d ns] break %s: %s = %g", e.Time, e.Source, e.Arg1, e.Value)
	case EvOverrun:
		return fmt.Sprintf("[%d ns] overrun %s: %g frames dropped", e.Time, e.Source, e.Value)
	case EvPreempt:
		return fmt.Sprintf("[%d ns] preempt %s by %s (%g total)", e.Time, e.Source, e.Arg1, e.Value)
	case EvDeadlineMiss:
		return fmt.Sprintf("[%d ns] deadline miss %s (%g total)", e.Time, e.Source, e.Value)
	case EvBusSlot:
		return fmt.Sprintf("[%d ns] bus slot %g: %s sends %s", e.Time, e.Value, e.Source, e.Arg1)
	case EvFrameDropped:
		return fmt.Sprintf("[%d ns] bus drop %s: %s (%g total)", e.Time, e.Source, e.Arg1, e.Value)
	default:
		return fmt.Sprintf("[%d ns] %s %s", e.Time, e.Type, e.Source)
	}
}

// InstructionType enumerates GDM → target control messages.
type InstructionType uint8

// Instruction types.
const (
	InInvalid InstructionType = iota
	InPause
	InResume
	InStep       // run until the next model-level event, then halt
	InSetBreak   // Source = breakpoint id, Arg1 = encoded condition
	InClearBreak // Source = breakpoint id
	InReadVar    // Source = symbol name
	InWriteVar   // Source = symbol name, Value = new value
)

// String names the instruction type.
func (t InstructionType) String() string {
	switch t {
	case InPause:
		return "Pause"
	case InResume:
		return "Resume"
	case InStep:
		return "Step"
	case InSetBreak:
		return "SetBreak"
	case InClearBreak:
		return "ClearBreak"
	case InReadVar:
		return "ReadVar"
	case InWriteVar:
		return "WriteVar"
	default:
		return fmt.Sprintf("InstructionType(%d)", t)
	}
}

// Instruction is one GDM → target control message.
type Instruction struct {
	Type   InstructionType
	Seq    uint16
	Source string
	Arg1   string
	Value  float64
}

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the
// checksum traditionally used on serial debug links.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
