package protocol

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1 (standard check value).
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check value = %#x, want 0x29B1", got)
	}
	if CRC16(nil) != 0xFFFF {
		t.Errorf("CRC16(empty) should be the init value")
	}
}

func TestEventRoundtrip(t *testing.T) {
	events := []Event{
		{Type: EvHello, Seq: 1, Time: 0, Source: "heater_v1"},
		{Type: EvStateEnter, Seq: 2, Time: 1_000_000, Source: "ctrl", Arg1: "Heating"},
		{Type: EvTransition, Seq: 3, Time: 2_500_000, Source: "ctrl", Arg1: "Idle", Arg2: "Heating"},
		{Type: EvSignal, Seq: 4, Time: 3_000_000, Source: "temp", Value: 23.75},
		{Type: EvTaskStart, Seq: 5, Time: 4_000_000, Source: "ctrl_task"},
		{Type: EvTaskDeadline, Seq: 6, Time: 5_000_000, Source: "ctrl_task"},
		{Type: EvBreakHit, Seq: 7, Time: 6_000_000, Source: "bp1"},
		{Type: EvHalted, Seq: 8, Time: 6_000_001},
		{Type: EvResumed, Seq: 9, Time: 6_000_002},
		{Type: EvWatch, Seq: 10, Time: 7_000_000, Source: "s", Arg1: "0", Arg2: "2", Value: 2},
	}
	var wire []byte
	for _, e := range events {
		b, err := EncodeEvent(e)
		if err != nil {
			t.Fatalf("EncodeEvent(%v): %v", e, err)
		}
		wire = append(wire, b...)
	}
	var d Decoder
	got, ins := d.Feed(wire)
	if len(ins) != 0 {
		t.Fatalf("unexpected instructions: %v", ins)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	if d.Errors != 0 || d.Pending() != 0 {
		t.Errorf("Errors=%d Pending=%d after clean stream", d.Errors, d.Pending())
	}
}

func TestInstructionRoundtrip(t *testing.T) {
	ins := []Instruction{
		{Type: InPause, Seq: 1},
		{Type: InResume, Seq: 2},
		{Type: InStep, Seq: 3},
		{Type: InSetBreak, Seq: 4, Source: "bp1", Arg1: "state == \"Heating\""},
		{Type: InClearBreak, Seq: 5, Source: "bp1"},
		{Type: InReadVar, Seq: 6, Source: "temp"},
		{Type: InWriteVar, Seq: 7, Source: "setpoint", Value: 21.5},
	}
	var wire []byte
	for _, in := range ins {
		b, err := EncodeInstruction(in)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, b...)
	}
	var d Decoder
	evs, got := d.Feed(wire)
	if len(evs) != 0 {
		t.Fatalf("unexpected events: %v", evs)
	}
	if len(got) != len(ins) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Errorf("instruction %d: %+v != %+v", i, got[i], ins[i])
		}
	}
}

func TestChunkedDelivery(t *testing.T) {
	e := Event{Type: EvSignal, Seq: 42, Time: 99, Source: "sig", Value: -1.5}
	wire, err := EncodeEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	var got []Event
	for _, b := range wire { // byte-at-a-time, as a UART would deliver
		evs, _ := d.Feed([]byte{b})
		got = append(got, evs...)
	}
	if len(got) != 1 || got[0] != e {
		t.Fatalf("chunked decode got %v", got)
	}
}

func TestResyncAfterGarbage(t *testing.T) {
	e1 := Event{Type: EvStateEnter, Seq: 1, Source: "m", Arg1: "A"}
	e2 := Event{Type: EvStateEnter, Seq: 2, Source: "m", Arg1: "B"}
	w1, _ := EncodeEvent(e1)
	w2, _ := EncodeEvent(e2)

	var stream []byte
	stream = append(stream, []byte{0x00, 0x12, 0x99}...) // leading noise
	stream = append(stream, w1...)
	corrupt := append([]byte{}, w1...)
	corrupt[len(corrupt)-1] ^= 0xFF // break CRC
	stream = append(stream, corrupt...)
	stream = append(stream, 0x7E, 0x01) // truncated fake frame start... followed by real frame
	stream = append(stream, w2...)

	var d Decoder
	evs, _ := d.Feed(stream)
	if len(evs) < 2 {
		t.Fatalf("decoded %d events, want >= 2 (resync failed)", len(evs))
	}
	if evs[0] != e1 || evs[len(evs)-1] != e2 {
		t.Errorf("wrong events after resync: %v", evs)
	}
	if d.Errors == 0 {
		t.Error("garbage should increment Errors")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	long := strings.Repeat("x", 300)
	if _, err := EncodeEvent(Event{Type: EvHello, Source: long}); err == nil {
		t.Error("oversize string field should fail")
	}
	// A frame advertising an absurd length must not stall the decoder.
	bogus := []byte{SOF, kindEvent, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF}
	var d Decoder
	d.Feed(bogus)
	d.Feed(make([]byte, 64))
	if d.Errors == 0 {
		t.Error("bogus length should count as error")
	}
}

func TestUnknownKindSkipped(t *testing.T) {
	payload, _ := packPayload("s", "", "", 0)
	frame := encodeFrame(0x55, 1, 1, 0, payload) // unknown kind, valid CRC
	var d Decoder
	evs, ins := d.Feed(frame)
	if len(evs) != 0 || len(ins) != 0 {
		t.Error("unknown kind should produce nothing")
	}
	if d.Errors != 1 {
		t.Errorf("Errors = %d, want 1", d.Errors)
	}
	if d.Pending() != 0 {
		t.Error("unknown-kind frame should still be consumed")
	}
}

func TestTypeStrings(t *testing.T) {
	evTypes := []EventType{EvHello, EvStateEnter, EvTransition, EvSignal, EvTaskStart,
		EvTaskDeadline, EvBreakHit, EvHalted, EvResumed, EvWatch}
	seen := map[string]bool{}
	for _, typ := range evTypes {
		s := typ.String()
		if s == "" || seen[s] {
			t.Errorf("EventType %d has bad name %q", typ, s)
		}
		seen[s] = true
	}
	if !strings.Contains(EventType(200).String(), "200") {
		t.Error("unknown event type name")
	}
	inTypes := []InstructionType{InPause, InResume, InStep, InSetBreak, InClearBreak, InReadVar, InWriteVar}
	for _, typ := range inTypes {
		if typ.String() == "" || strings.Contains(typ.String(), "Type(") {
			t.Errorf("InstructionType %d has bad name", typ)
		}
	}
	if !strings.Contains(InstructionType(200).String(), "200") {
		t.Error("unknown instruction type name")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Type: EvStateEnter, Time: 5, Source: "m", Arg1: "On"}, "enter On"},
		{Event{Type: EvTransition, Source: "m", Arg1: "A", Arg2: "B"}, "A -> B"},
		{Event{Type: EvSignal, Source: "t", Value: 2.5}, "t = 2.5"},
		{Event{Type: EvWatch, Source: "s", Arg1: "1", Arg2: "2"}, "watch s"},
		{Event{Type: EvHello, Source: "p"}, "Hello p"},
	}
	for _, c := range cases {
		if !strings.Contains(c.e.String(), c.want) {
			t.Errorf("String(%+v) = %q missing %q", c.e, c.e.String(), c.want)
		}
	}
}

// Property: encode/decode is the identity for arbitrary events.
func TestQuickEventRoundtrip(t *testing.T) {
	f := func(typ uint8, seq uint16, tm uint64, src, a1, a2 string, val float64) bool {
		if len(src) > 255 || len(a1) > 255 || len(a2) > 255 {
			return true
		}
		e := Event{
			Type: EventType(typ%10 + 1), Seq: seq, Time: tm,
			Source: src, Arg1: a1, Arg2: a2, Value: val,
		}
		wire, err := EncodeEvent(e)
		if err != nil {
			return false
		}
		var d Decoder
		evs, _ := d.Feed(wire)
		if len(evs) != 1 {
			return false
		}
		g := evs[0]
		if math.IsNaN(val) {
			return g.Type == e.Type && g.Source == e.Source && math.IsNaN(g.Value)
		}
		return g == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: a valid frame embedded at a random position in random noise is
// still recovered.
func TestQuickResync(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := Event{Type: EvSignal, Seq: 7, Time: 123, Source: "x", Value: 1}
	wire, _ := EncodeEvent(e)
	for i := 0; i < 200; i++ {
		pre := make([]byte, r.Intn(40))
		r.Read(pre)
		// Noise must not contain a prefix that forms a longer valid frame;
		// extremely unlikely, and the trailing real frame is still found
		// because resync walks byte by byte.
		stream := append(append([]byte{}, pre...), wire...)
		var d Decoder
		evs, _ := d.Feed(stream)
		found := false
		for _, g := range evs {
			if g == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("frame lost in noise (iteration %d, noise %v)", i, pre)
		}
	}
}

// Property: decoder never panics on arbitrary input and eventually drains.
func TestQuickDecoderTotal(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var d Decoder
		for _, c := range chunks {
			d.Feed(c)
		}
		return d.Pending() <= MaxPayload+headerLen+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadUnpackErrors(t *testing.T) {
	if _, _, _, _, err := unpackPayload([]byte{}); err == nil {
		t.Error("empty payload should fail")
	}
	if _, _, _, _, err := unpackPayload([]byte{5, 'a'}); err == nil {
		t.Error("overrun should fail")
	}
	if _, _, _, _, err := unpackPayload([]byte{0, 0, 0, 1, 2, 3}); err == nil {
		t.Error("bad tail should fail")
	}
	ok, _ := packPayload("a", "b", "c", 1)
	if _, _, _, _, err := unpackPayload(append(ok, 0)); err == nil {
		t.Error("trailing byte should fail")
	}
}

func TestDecoderKeepsPartialFrame(t *testing.T) {
	e := Event{Type: EvSignal, Source: "s", Value: 3}
	wire, _ := EncodeEvent(e)
	var d Decoder
	evs, _ := d.Feed(wire[:len(wire)-1])
	if len(evs) != 0 {
		t.Fatal("incomplete frame decoded")
	}
	if d.Pending() == 0 {
		t.Error("partial frame should be pending")
	}
	evs, _ = d.Feed(wire[len(wire)-1:])
	if len(evs) != 1 || !bytes.Equal([]byte(evs[0].Source), []byte("s")) {
		t.Fatal("completion failed")
	}
}
