package protocol

import (
	"strings"
	"testing"
)

// TestBusEventWire: the TDMA bus incident events cross the frame codec
// intact and render readably.
func TestBusEventWire(t *testing.T) {
	events := []Event{
		{Type: EvBusSlot, Seq: 3, Time: 1_200_000, Source: "nodeA", Arg1: "v_sig", Value: 4},
		{Type: EvFrameDropped, Seq: 4, Time: 1_500_000, Source: "nodeA", Arg1: "v_sig", Value: 2},
	}
	var dec Decoder
	for _, ev := range events {
		wire, err := EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := dec.Feed(wire)
		if len(got) != 1 {
			t.Fatalf("%v: decoded %d events", ev.Type, len(got))
		}
		if got[0] != ev {
			t.Errorf("roundtrip changed the event:\n got %+v\nwant %+v", got[0], ev)
		}
	}
	if s := events[0].String(); !strings.Contains(s, "bus slot 4: nodeA sends v_sig") {
		t.Errorf("EvBusSlot renders as %q", s)
	}
	if s := events[1].String(); !strings.Contains(s, "bus drop nodeA: v_sig (2 total)") {
		t.Errorf("EvFrameDropped renders as %q", s)
	}
	if EvBusSlot.String() != "BusSlot" || EvFrameDropped.String() != "FrameDropped" {
		t.Error("event type names wrong")
	}
}
