package protocol

import (
	"strings"
	"testing"
)

// TestSchedulingEventWire: the scheduler's incident events cross the frame
// codec intact and render readably.
func TestSchedulingEventWire(t *testing.T) {
	events := []Event{
		{Type: EvPreempt, Seq: 7, Time: 1_000_000, Source: "lowly", Arg1: "hog", Value: 3},
		{Type: EvDeadlineMiss, Seq: 8, Time: 2_000_000, Source: "lowly", Value: 1},
	}
	var dec Decoder
	for _, ev := range events {
		wire, err := EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := dec.Feed(wire)
		if len(got) != 1 {
			t.Fatalf("%v: decoded %d events", ev.Type, len(got))
		}
		if got[0] != ev {
			t.Errorf("roundtrip changed the event:\n got %+v\nwant %+v", got[0], ev)
		}
	}
	if s := events[0].String(); !strings.Contains(s, "preempt lowly by hog") {
		t.Errorf("EvPreempt renders as %q", s)
	}
	if s := events[1].String(); !strings.Contains(s, "deadline miss lowly") {
		t.Errorf("EvDeadlineMiss renders as %q", s)
	}
	if EvPreempt.String() != "Preempt" || EvDeadlineMiss.String() != "DeadlineMiss" {
		t.Error("event type names wrong")
	}
}
