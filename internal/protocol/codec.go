package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Frame layout (before byte stuffing), after SOF:
//
//	kind(1) type(1) seq(2) time(8) len(2) payload crc(2)
//
// kind distinguishes events (0x01) from instructions (0x02) so both can
// share a full-duplex link. The payload packs the string fields with one
// length byte each plus the float64 value:
//
//	srcLen(1) src a1Len(1) a1 a2Len(1) a2 value(8)
//
// The body is HDLC-style byte-stuffed: SOF (0x7E) and ESC (0x7D) bytes in
// the body are sent as ESC, b^0x20. A raw SOF therefore always marks a
// frame boundary, which guarantees the decoder can resynchronise after
// arbitrary line noise: the next genuine frame's SOF aborts whatever
// damaged frame the decoder was accumulating.

const (
	kindEvent       = 0x01
	kindInstruction = 0x02
	headerLen       = 1 + 1 + 2 + 8 + 2 // after SOF, before payload

	escByte = 0x7D
	escXor  = 0x20
)

func packPayload(src, a1, a2 string, val float64) ([]byte, error) {
	if len(src) > 255 || len(a1) > 255 || len(a2) > 255 {
		return nil, fmt.Errorf("protocol: string field exceeds 255 bytes")
	}
	out := make([]byte, 0, 3+len(src)+len(a1)+len(a2)+8)
	for _, s := range []string{src, a1, a2} {
		out = append(out, byte(len(s)))
		out = append(out, s...)
	}
	var fb [8]byte
	binary.BigEndian.PutUint64(fb[:], math.Float64bits(val))
	out = append(out, fb[:]...)
	if len(out) > MaxPayload {
		return nil, fmt.Errorf("protocol: payload %d exceeds max %d", len(out), MaxPayload)
	}
	return out, nil
}

func unpackPayload(p []byte) (src, a1, a2 string, val float64, err error) {
	fields := make([]string, 3)
	pos := 0
	for i := 0; i < 3; i++ {
		if pos >= len(p) {
			return "", "", "", 0, fmt.Errorf("protocol: truncated payload")
		}
		n := int(p[pos])
		pos++
		if pos+n > len(p) {
			return "", "", "", 0, fmt.Errorf("protocol: string field overruns payload")
		}
		fields[i] = string(p[pos : pos+n])
		pos += n
	}
	if pos+8 != len(p) {
		return "", "", "", 0, fmt.Errorf("protocol: payload length mismatch (%d vs %d)", pos+8, len(p))
	}
	val = math.Float64frombits(binary.BigEndian.Uint64(p[pos:]))
	return fields[0], fields[1], fields[2], val, nil
}

// stuff escapes SOF and ESC bytes in body.
func stuff(body []byte) []byte {
	out := make([]byte, 0, len(body)+4)
	for _, b := range body {
		if b == SOF || b == escByte {
			out = append(out, escByte, b^escXor)
			continue
		}
		out = append(out, b)
	}
	return out
}

func encodeFrame(kind, typ byte, seq uint16, t uint64, payload []byte) []byte {
	body := make([]byte, 0, headerLen+len(payload)+2)
	body = append(body, kind, typ)
	body = binary.BigEndian.AppendUint16(body, seq)
	body = binary.BigEndian.AppendUint64(body, t)
	body = binary.BigEndian.AppendUint16(body, uint16(len(payload)))
	body = append(body, payload...)
	body = binary.BigEndian.AppendUint16(body, CRC16(body))
	return append([]byte{SOF}, stuff(body)...)
}

// EncodeEvent serializes an event to its wire frame.
func EncodeEvent(e Event) ([]byte, error) {
	payload, err := packPayload(e.Source, e.Arg1, e.Arg2, e.Value)
	if err != nil {
		return nil, err
	}
	return encodeFrame(kindEvent, byte(e.Type), e.Seq, e.Time, payload), nil
}

// EncodeInstruction serializes an instruction to its wire frame.
func EncodeInstruction(in Instruction) ([]byte, error) {
	payload, err := packPayload(in.Source, in.Arg1, "", in.Value)
	if err != nil {
		return nil, err
	}
	return encodeFrame(kindInstruction, byte(in.Type), in.Seq, 0, payload), nil
}

// Decoder incrementally parses a byte stream into events and instructions.
// Damaged input (bad CRC, bad lengths, truncation) is discarded up to the
// next raw SOF; the Errors counter tallies discarded fragments.
type Decoder struct {
	body    []byte // unstuffed body of the frame being accumulated
	inFrame bool
	esc     bool
	noise   bool // inside a run of pre-SOF noise (coalesced error count)
	Errors  int

	events       []Event
	instructions []Instruction
}

// Feed appends data and returns all complete, valid messages decoded so
// far, in arrival order per slice.
func (d *Decoder) Feed(data []byte) ([]Event, []Instruction) {
	for _, b := range data {
		d.step(b)
	}
	evs, ins := d.events, d.instructions
	d.events, d.instructions = nil, nil
	return evs, ins
}

// step advances the deframing state machine by one raw byte.
func (d *Decoder) step(b byte) {
	if b == SOF {
		// A raw SOF always starts a new frame; any partial frame in
		// progress was damaged or was noise.
		if d.inFrame && len(d.body) > 0 {
			d.Errors++
		}
		d.inFrame = true
		d.esc = false
		d.body = d.body[:0]
		return
	}
	if !d.inFrame {
		// Noise before the first SOF; count once per run via Errors on the
		// next SOF? Keep it simple: count each orphan byte run lazily.
		d.noteNoise()
		return
	}
	if d.esc {
		d.esc = false
		b ^= escXor
	} else if b == escByte {
		d.esc = true
		return
	}
	d.body = append(d.body, b)
	d.tryComplete()
}

// noiseNoted coalesces leading-noise error counting to once per run.
func (d *Decoder) noteNoise() {
	if !d.noise {
		d.noise = true
		d.Errors++
	}
}

// tryComplete checks whether the accumulated body forms a full frame.
func (d *Decoder) tryComplete() {
	if len(d.body) < headerLen {
		return
	}
	plen := int(binary.BigEndian.Uint16(d.body[12:14]))
	if plen > MaxPayload {
		d.Errors++
		d.inFrame = false
		d.body = d.body[:0]
		return
	}
	total := headerLen + plen + 2
	if len(d.body) < total {
		return
	}
	if len(d.body) > total {
		// Cannot happen: we check after every byte. Guard anyway.
		d.Errors++
		d.inFrame = false
		d.body = d.body[:0]
		return
	}
	frame := d.body
	want := binary.BigEndian.Uint16(frame[total-2:])
	if CRC16(frame[:total-2]) != want {
		d.Errors++
		d.inFrame = false
		d.body = d.body[:0]
		return
	}
	kind, typ := frame[0], frame[1]
	seq := binary.BigEndian.Uint16(frame[2:4])
	tstamp := binary.BigEndian.Uint64(frame[4:12])
	src, a1, a2, val, err := unpackPayload(frame[headerLen : total-2])
	if err != nil {
		d.Errors++
	} else {
		switch kind {
		case kindEvent:
			d.events = append(d.events, Event{Type: EventType(typ), Seq: seq, Time: tstamp, Source: src, Arg1: a1, Arg2: a2, Value: val})
		case kindInstruction:
			d.instructions = append(d.instructions, Instruction{Type: InstructionType(typ), Seq: seq, Source: src, Arg1: a1, Value: val})
		default:
			d.Errors++
		}
	}
	d.inFrame = false
	d.noise = false
	d.body = d.body[:0]
}

// Pending returns the number of buffered, not-yet-decodable body bytes.
func (d *Decoder) Pending() int { return len(d.body) }

// DecoderState is the portable form of a Decoder's deframing state: the
// partially accumulated frame body and the resynchronisation flags. A
// checkpoint taken while a frame straddles the capture instant restores
// with the decoder mid-frame, so the remaining bytes complete it exactly
// as they would have.
type DecoderState struct {
	Body    []byte `json:"body,omitempty"`
	InFrame bool   `json:"inFrame,omitempty"`
	Esc     bool   `json:"esc,omitempty"`
	Noise   bool   `json:"noise,omitempty"`
	Errors  int    `json:"errors,omitempty"`
}

// Clone deep-copies the deframing state (partial frame body duplicated,
// nil-ness preserved).
func (st DecoderState) Clone() DecoderState {
	cp := st
	cp.Body = slices.Clone(st.Body)
	return cp
}

// Snapshot captures the deframing state. Decoded-but-undrained messages
// are not part of it: callers drain Feed's return values synchronously, so
// at any quiescent point the pending slices are empty.
func (d *Decoder) Snapshot() DecoderState {
	st := DecoderState{InFrame: d.inFrame, Esc: d.esc, Noise: d.noise, Errors: d.Errors}
	if len(d.body) > 0 {
		st.Body = append([]byte(nil), d.body...)
	}
	return st
}

// Restore rewinds the decoder to a previously captured deframing state.
func (d *Decoder) Restore(st DecoderState) {
	d.body = append(d.body[:0], st.Body...)
	d.inFrame = st.InFrame
	d.esc = st.Esc
	d.noise = st.Noise
	d.Errors = st.Errors
	d.events, d.instructions = nil, nil
}
