package expr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Node is an expression AST node. Nodes are immutable after parsing.
type Node interface {
	// String renders the node back to concrete syntax (fully parenthesised
	// for binary operations so the rendering is unambiguous).
	String() string
	// walk visits the node and its children in prefix order.
	walk(func(Node))
}

// Lit is a literal constant.
type Lit struct {
	Val value.Value
}

func (n *Lit) String() string {
	if n.Val.Kind() == value.String {
		return fmt.Sprintf("%q", n.Val.Str())
	}
	return n.Val.String()
}
func (n *Lit) walk(f func(Node)) { f(n) }

// Ident is a (possibly dotted) variable reference.
type Ident struct {
	Name string
}

func (n *Ident) String() string    { return n.Name }
func (n *Ident) walk(f func(Node)) { f(n) }

// Unary is a prefix operation: "-" (negate) or "!" (logical not).
type Unary struct {
	Op string
	X  Node
}

func (n *Unary) String() string { return n.Op + n.X.String() }
func (n *Unary) walk(f func(Node)) {
	f(n)
	n.X.walk(f)
}

// Binary is an infix operation.
type Binary struct {
	Op   string
	L, R Node
}

func (n *Binary) String() string {
	return "(" + n.L.String() + " " + n.Op + " " + n.R.String() + ")"
}
func (n *Binary) walk(f func(Node)) {
	f(n)
	n.L.walk(f)
	n.R.walk(f)
}

// Call is a builtin function application.
type Call struct {
	Fn   string
	Args []Node
}

func (n *Call) String() string {
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return n.Fn + "(" + strings.Join(parts, ", ") + ")"
}
func (n *Call) walk(f func(Node)) {
	f(n)
	for _, a := range n.Args {
		a.walk(f)
	}
}

// Vars returns the sorted-unique set of identifier names referenced by the
// expression; used by the debugger to derive the watch set of a breakpoint
// predicate and by the code generator to allocate signal slots.
func Vars(n Node) []string {
	seen := map[string]bool{}
	var names []string
	n.walk(func(c Node) {
		if id, ok := c.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
	})
	sortStrings(names)
	return names
}

// sortStrings is a minimal insertion sort to avoid pulling in package sort
// for tiny slices on hot paths.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
