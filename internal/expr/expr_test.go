package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func evalOK(t *testing.T, src string, env Env) value.Value {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := Eval(n, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestLiterals(t *testing.T) {
	if v := evalOK(t, "42", nil); v.Kind() != value.Int || v.Int() != 42 {
		t.Errorf("42 = %v", v)
	}
	if v := evalOK(t, "3.5", nil); v.Kind() != value.Float || v.Float() != 3.5 {
		t.Errorf("3.5 = %v", v)
	}
	if v := evalOK(t, "1e3", nil); v.Float() != 1000 {
		t.Errorf("1e3 = %v", v)
	}
	if v := evalOK(t, "2.5e-1", nil); v.Float() != 0.25 {
		t.Errorf("2.5e-1 = %v", v)
	}
	if v := evalOK(t, "true", nil); !v.Bool() {
		t.Errorf("true = %v", v)
	}
	if v := evalOK(t, "false", nil); v.Bool() {
		t.Errorf("false = %v", v)
	}
	if v := evalOK(t, `"hi\n\t\"\\"`, nil); v.Str() != "hi\n\t\"\\" {
		t.Errorf("string lit = %q", v.Str())
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	cases := map[string]float64{
		"1+2*3":         7,
		"(1+2)*3":       9,
		"2*3+1":         7,
		"10-4-3":        3, // left assoc
		"100/10/5":      2,
		"7%4":           3,
		"-3+5":          2,
		"--4":           4,
		"2*-3":          -6,
		"1+2.0":         3,
		"min(3,7)":      3,
		"max(3,7)":      7,
		"abs(-4.5)":     4.5,
		"clamp(5,0,3)":  3,
		"clamp(-1,0,3)": 0,
		"clamp(2,0,3)":  2,
		"floor(2.7)":    2,
		"ceil(2.1)":     3,
		"sqrt(16)":      4,
		"sign(-9)":      -1,
		"sign(0)":       0,
		"sign(2.5)":     1,
	}
	for src, want := range cases {
		if v := evalOK(t, src, nil); math.Abs(v.Float()-want) > 1e-12 {
			t.Errorf("%s = %v, want %g", src, v, want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := MapEnv{"t": value.F(25), "mode": value.I(2), "on": value.B(true)}
	cases := map[string]bool{
		"t > 20":                true,
		"t >= 25":               true,
		"t < 25":                false,
		"t <= 24.9":             false,
		"t == 25":               true,
		"t != 25":               false,
		"mode == 2 && t > 20":   true,
		"mode == 1 || t > 20":   true,
		"mode == 1 && t > 20":   false,
		"!on":                   false,
		"!(t < 0)":              true,
		"on && mode == 2":       true,
		`"abc" < "abd"`:         true,
		`"x" == "x"`:            true,
		"true && false || true": true, // && binds tighter
		"mode == 2 || 1/0 > 0":  true, // short-circuit skips div-by-zero
		"mode == 1 && 1/0 > 0":  false,
	}
	for src, want := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := EvalBool(n, env)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", src, err)
		}
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestIntVsFloatDivision(t *testing.T) {
	if v := evalOK(t, "7/2", nil); v.Kind() != value.Int || v.Int() != 3 {
		t.Errorf("7/2 = %v, want int 3", v)
	}
	if v := evalOK(t, "7.0/2", nil); v.Kind() != value.Float || v.Float() != 3.5 {
		t.Errorf("7.0/2 = %v, want float 3.5", v)
	}
}

func TestDottedIdentifiers(t *testing.T) {
	env := MapEnv{"heater.temp": value.F(30)}
	if v := evalOK(t, "heater.temp - 5", env); v.Float() != 25 {
		t.Errorf("dotted ident = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "foo(", "1 = 2", "@", "1..2", "nosuchfn(1)",
		"min(1)", "min(1,2,3)", `"unterminated`, `"bad\q"`, "1.e", "&& 1", "a b",
		"1e", "1e+",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"x + 1",        // unbound
		"1/0",          // div by zero
		`"a" + 1`,      // string arithmetic
		"-true",        // negate bool
		"sqrt(-1)",     // domain
		"clamp(1,5,0)", // inverted range
		`"a" < 1`,      // incomparable
	}
	for _, src := range bad {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(n, MapEnv{}); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestVars(t *testing.T) {
	n := MustParse("b + a*2 > c.d && b < max(a, 10)")
	got := Vars(n)
	want := []string{"a", "b", "c.d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestBuiltinsList(t *testing.T) {
	names := Builtins()
	if len(names) != len(builtins) {
		t.Fatalf("Builtins() returned %d names, want %d", len(names), len(builtins))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Builtins() not sorted: %v", names)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

// TestStringRoundtrip: parse → String → parse yields an equivalent AST
// (checked by evaluating both under a fixed env).
func TestStringRoundtrip(t *testing.T) {
	env := MapEnv{"a": value.F(3), "b": value.F(-2), "c": value.I(5)}
	exprs := []string{
		"a + b*c - 4", "a > b && c != 5 || !(a < 0)", "min(a, max(b, c))",
		"-a * -b", "clamp(a, b, c) + sqrt(4)", `"s" == "s" && a >= b`,
	}
	for _, src := range exprs {
		n1 := MustParse(src)
		n2 := MustParse(n1.String())
		v1, err1 := Eval(n1, env)
		v2, err2 := Eval(n2, env)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: eval errors %v / %v", src, err1, err2)
		}
		if !value.Equal(v1, v2) {
			t.Errorf("%s: %v != %v after roundtrip via %q", src, v1, v2, n1.String())
		}
	}
}

// randExpr generates a random arithmetic expression tree over variables a,b
// together with its expected value. Division is avoided to dodge
// divide-by-zero; only float arithmetic is generated.
func randExpr(r *rand.Rand, depth int, env MapEnv) (string, float64) {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			f := float64(r.Intn(100)) / 4
			return value.F(f).String(), f
		case 1:
			return "a", env["a"].Float()
		default:
			return "b", env["b"].Float()
		}
	}
	ls, lv := randExpr(r, depth-1, env)
	rs, rv := randExpr(r, depth-1, env)
	switch r.Intn(3) {
	case 0:
		return "(" + ls + " + " + rs + ")", lv + rv
	case 1:
		return "(" + ls + " - " + rs + ")", lv - rv
	default:
		return "(" + ls + " * " + rs + ")", lv * rv
	}
}

// Property: randomly generated expressions evaluate to their constructed
// reference value.
func TestQuickRandomArithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	env := MapEnv{"a": value.F(1.5), "b": value.F(-2.25)}
	for i := 0; i < 500; i++ {
		src, want := randExpr(r, 4, env)
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		v, err := Eval(n, env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if math.Abs(v.Float()-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s = %v, want %g", src, v, want)
		}
	}
}

// Property: comparison of random floats agrees with Go comparison.
func TestQuickComparisons(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		env := MapEnv{"a": value.F(a), "b": value.F(b)}
		lt, err := EvalBool(MustParse("a < b"), env)
		if err != nil || lt != (a < b) {
			return false
		}
		ge, err := EvalBool(MustParse("a >= b"), env)
		if err != nil || ge != (a >= b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lexer never panics and either errors or produces tokens for
// arbitrary strings.
func TestQuickLexerTotal(t *testing.T) {
	f := func(s string) bool {
		toks, err := lex(s)
		if err != nil {
			return true
		}
		return len(toks) >= 1 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarsOfCallAndString(t *testing.T) {
	n := MustParse(`max(x, y) > 0 && name == "idle"`)
	vars := Vars(n)
	joined := strings.Join(vars, ",")
	if joined != "name,x,y" {
		t.Errorf("Vars = %v", vars)
	}
}
