package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// parser consumes a token stream produced by lex.
type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses src into an AST.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "trailing input %q", p.peek().text)
	}
	return n, nil
}

// MustParse parses src and panics on error; for tests and static tables.
// The panic message names the offending source so a failure inside a
// static table identifies which entry is broken.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("expr: MustParse(%q): %v", src, err))
	}
	return n
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptOp(ops ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return "", false
	}
	for _, op := range ops {
		if t.text == op {
			p.next()
			return op, true
		}
	}
	return "", false
}

func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("||"); !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "||", L: left, R: right}
	}
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("&&"); !ok {
			return left, nil
		}
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "&&", L: left, R: right}
	}
}

func (p *parser) parseCmp() (Node, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := p.acceptOp("==", "!=", "<=", ">=", "<", ">"); ok {
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("+", "-")
		if !ok {
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMul() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("*", "/", "%")
		if !ok {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if op, ok := p.acceptOp("-", "!"); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errAt(t.pos, "bad number %q: %v", t.text, err)
			}
			return &Lit{Val: value.F(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t.pos, "bad integer %q: %v", t.text, err)
		}
		return &Lit{Val: value.I(i)}, nil
	case tokString:
		p.next()
		return &Lit{Val: value.S(t.text)}, nil
	case tokBoolLit:
		p.next()
		return &Lit{Val: value.B(t.text == "true")}, nil
	case tokIdent:
		p.next()
		if _, ok := p.acceptOp("("); ok {
			return p.parseCallArgs(t.text, t.pos)
		}
		return &Ident{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, ok := p.acceptOp(")"); !ok {
				return nil, errAt(p.peek().pos, "missing ')'")
			}
			return inner, nil
		}
	}
	return nil, errAt(t.pos, "unexpected token %q", t.text)
}

// parseCallArgs parses the argument list of a builtin call; pos is the
// byte offset of the function identifier, anchoring arity and
// unknown-function errors at the call site.
func (p *parser) parseCallArgs(fn string, pos int) (Node, error) {
	if _, ok := builtins[fn]; !ok {
		return nil, errAt(pos, "unknown function %q", fn)
	}
	var args []Node
	if _, ok := p.acceptOp(")"); ok {
		return checkArity(&Call{Fn: fn, Args: args}, pos)
	}
	for {
		a, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if _, ok := p.acceptOp(","); ok {
			continue
		}
		if _, ok := p.acceptOp(")"); ok {
			return checkArity(&Call{Fn: fn, Args: args}, pos)
		}
		return nil, errAt(p.peek().pos, "expected ',' or ')'")
	}
}

func checkArity(c *Call, pos int) (Node, error) {
	b := builtins[c.Fn]
	if len(c.Args) < b.minArgs || len(c.Args) > b.maxArgs {
		return nil, errAt(pos, "%s expects %d..%d args, got %d", c.Fn, b.minArgs, b.maxArgs, len(c.Args))
	}
	return c, nil
}
