package expr

import (
	"strings"
	"testing"
)

// TestErrorPositions walks every lexer and parser error path and pins
// the byte offset each one reports. Offsets anchor diagnostics in
// multi-line DSL sources, so a path regressing to "no position" or to
// the wrong token is a bug, not a cosmetic change.
func TestErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		off  int
		want string // substring of the message
	}{
		// Lexer paths.
		{"malformed number", "1 + 2.", 4, "malformed number"},
		{"malformed exponent", "3e+", 0, "malformed number"},
		{"unterminated escape", `"ab\`, 0, "unterminated escape"},
		{"unknown escape", `"ab\q"`, 4, "unknown escape"},
		{"unterminated string", `1 + "abc`, 4, "unterminated string"},
		{"single equals", "a = b", 2, "single '='"},
		{"unexpected character", "a + #", 4, "unexpected character"},
		// Parser paths.
		{"trailing input", "1 2", 2, "trailing input"},
		{"missing rparen", "(1 + 2", 6, "missing ')'"},
		{"unexpected token", "1 + *", 4, "unexpected token"},
		{"unknown function", "1 + nosuch(2)", 4, "unknown function"},
		{"arity low", "a + min(1)", 4, "min expects"},
		{"arity high", "max(1, 2, 3)", 0, "max expects"},
		{"expected comma", "min(1 ! 2)", 6, "expected ',' or ')'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q): expected error", tc.src)
			}
			pe, ok := err.(*Error)
			if !ok {
				t.Fatalf("Parse(%q): error %v is %T, want *expr.Error", tc.src, err, err)
			}
			if pe.Offset != tc.off {
				t.Errorf("Parse(%q): offset %d, want %d (%v)", tc.src, pe.Offset, tc.off, err)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Errorf("Parse(%q): message %q missing %q", tc.src, pe.Msg, tc.want)
			}
			if pe.Offset < 0 || pe.Offset > len(tc.src) {
				t.Errorf("Parse(%q): offset %d out of range [0, %d]", tc.src, pe.Offset, len(tc.src))
			}
		})
	}
}

// TestBadNumberParserPath covers the parser-side strconv fallbacks: the
// lexer accepts the shape but strconv rejects the magnitude.
func TestBadNumberParserPath(t *testing.T) {
	// 20 digits overflows int64, exercising the bad-integer branch.
	src := "a + 99999999999999999999"
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q): expected error", src)
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error %v is %T, want *expr.Error", err, err)
	}
	if pe.Offset != 4 {
		t.Errorf("offset %d, want 4 (%v)", pe.Offset, err)
	}
	if !strings.Contains(pe.Msg, "bad integer") {
		t.Errorf("message %q missing %q", pe.Msg, "bad integer")
	}
	// A float too large even for float64's exponent range.
	src = "1e999999999"
	_, err = Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q): expected error", src)
	}
	pe, ok = err.(*Error)
	if !ok {
		t.Fatalf("error %v is %T, want *expr.Error", err, err)
	}
	if pe.Offset != 0 {
		t.Errorf("offset %d, want 0 (%v)", pe.Offset, err)
	}
	if !strings.Contains(pe.Msg, "bad number") {
		t.Errorf("message %q missing %q", pe.Msg, "bad number")
	}
}

func TestPosition(t *testing.T) {
	_, err := Parse("1 +")
	if err == nil {
		t.Fatal("expected error")
	}
	off, ok := Position(err)
	if !ok {
		t.Fatalf("Position(%v): not a positioned error", err)
	}
	if off != 3 {
		t.Errorf("Position = %d, want 3", off)
	}
	if _, ok := Position(errFake{}); ok {
		t.Error("Position(errFake{}) = true, want false")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func TestLineCol(t *testing.T) {
	src := "ab\ncde\n\nf"
	cases := []struct {
		off, line, col int
	}{
		{0, 1, 1},  // 'a'
		{1, 1, 2},  // 'b'
		{2, 1, 3},  // the newline itself: still line 1
		{3, 2, 1},  // 'c'
		{5, 2, 3},  // 'e'
		{7, 3, 1},  // empty line
		{8, 4, 1},  // 'f'
		{9, 4, 2},  // one past the end
		{99, 4, 2}, // clamped
		{-5, 1, 1}, // clamped
	}
	for _, tc := range cases {
		line, col := LineCol(src, tc.off)
		if line != tc.line || col != tc.col {
			t.Errorf("LineCol(%d) = %d:%d, want %d:%d", tc.off, line, col, tc.line, tc.col)
		}
	}
}

// TestMustParseMessage pins that the panic names the offending source.
func TestMustParseMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v is %T, want string", r, r)
		}
		if !strings.Contains(msg, `"1 +++"`) {
			t.Errorf("panic %q does not name the source", msg)
		}
	}()
	MustParse("1 +++")
}
