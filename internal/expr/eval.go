package expr

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Env supplies variable values during evaluation.
type Env interface {
	// Lookup returns the value bound to name, or ok=false if unbound.
	Lookup(name string) (value.Value, bool)
}

// MapEnv is the trivial Env over a map.
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (value.Value, bool) {
	v, ok := m[name]
	return v, ok
}

// builtin describes one intrinsic function.
type builtin struct {
	minArgs, maxArgs int
	apply            func(args []value.Value) (value.Value, error)
}

// builtins is the intrinsic function table. All functions operate on
// numeric values and return Float (except sign/clampi behaviours noted).
var builtins = map[string]builtin{
	"abs": {1, 1, func(a []value.Value) (value.Value, error) {
		if a[0].Kind() == value.Int {
			v := a[0].Int()
			if v < 0 {
				v = -v
			}
			return value.I(v), nil
		}
		return value.F(math.Abs(a[0].Float())), nil
	}},
	"min": {2, 2, func(a []value.Value) (value.Value, error) {
		c, err := value.Compare(a[0], a[1])
		if err != nil {
			return value.Value{}, err
		}
		if c <= 0 {
			return a[0], nil
		}
		return a[1], nil
	}},
	"max": {2, 2, func(a []value.Value) (value.Value, error) {
		c, err := value.Compare(a[0], a[1])
		if err != nil {
			return value.Value{}, err
		}
		if c >= 0 {
			return a[0], nil
		}
		return a[1], nil
	}},
	"clamp": {3, 3, func(a []value.Value) (value.Value, error) {
		x, lo, hi := a[0].Float(), a[1].Float(), a[2].Float()
		if lo > hi {
			return value.Value{}, fmt.Errorf("expr: clamp lo %g > hi %g", lo, hi)
		}
		return value.F(math.Max(lo, math.Min(hi, x))), nil
	}},
	"floor": {1, 1, func(a []value.Value) (value.Value, error) {
		return value.F(math.Floor(a[0].Float())), nil
	}},
	"ceil": {1, 1, func(a []value.Value) (value.Value, error) {
		return value.F(math.Ceil(a[0].Float())), nil
	}},
	"sqrt": {1, 1, func(a []value.Value) (value.Value, error) {
		x := a[0].Float()
		if x < 0 {
			return value.Value{}, fmt.Errorf("expr: sqrt of negative %g", x)
		}
		return value.F(math.Sqrt(x)), nil
	}},
	"sign": {1, 1, func(a []value.Value) (value.Value, error) {
		x := a[0].Float()
		switch {
		case x > 0:
			return value.I(1), nil
		case x < 0:
			return value.I(-1), nil
		default:
			return value.I(0), nil
		}
	}},
}

// CallBuiltin applies the named intrinsic to already-evaluated arguments;
// the generated code's VM dispatches through this so compiled and
// interpreted evaluation share one implementation.
func CallBuiltin(name string, args []value.Value) (value.Value, error) {
	b, ok := builtins[name]
	if !ok {
		return value.Value{}, fmt.Errorf("expr: unknown builtin %q", name)
	}
	if len(args) < b.minArgs || len(args) > b.maxArgs {
		return value.Value{}, fmt.Errorf("expr: %s expects %d..%d args, got %d", name, b.minArgs, b.maxArgs, len(args))
	}
	return b.apply(args)
}

// BuiltinApply resolves the named intrinsic to its apply function when the
// argument count is statically within arity, so an ahead-of-time compiler
// can bind the call site once instead of re-resolving per invocation. It
// returns nil when the name is unknown or nargs is out of range — callers
// fall back to CallBuiltin, which produces the canonical error.
func BuiltinApply(name string, nargs int) func(args []value.Value) (value.Value, error) {
	b, ok := builtins[name]
	if !ok || nargs < b.minArgs || nargs > b.maxArgs {
		return nil
	}
	return b.apply
}

// Builtins returns the sorted names of all intrinsic functions.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// Eval evaluates the expression under env. Logical operators short-circuit;
// comparison operators yield Bool; arithmetic follows value promotion rules.
func Eval(n Node, env Env) (value.Value, error) {
	switch e := n.(type) {
	case *Lit:
		return e.Val, nil
	case *Ident:
		v, ok := env.Lookup(e.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("expr: unbound variable %q", e.Name)
		}
		return v, nil
	case *Unary:
		x, err := Eval(e.X, env)
		if err != nil {
			return value.Value{}, err
		}
		switch e.Op {
		case "-":
			return value.Neg(x)
		case "!":
			return value.B(!x.Bool()), nil
		}
		return value.Value{}, fmt.Errorf("expr: unknown unary %q", e.Op)
	case *Binary:
		return evalBinary(e, env)
	case *Call:
		args := make([]value.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := Eval(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return builtins[e.Fn].apply(args)
	}
	return value.Value{}, fmt.Errorf("expr: unknown node %T", n)
}

func evalBinary(e *Binary, env Env) (value.Value, error) {
	// Short-circuit logic first.
	switch e.Op {
	case "&&":
		l, err := Eval(e.L, env)
		if err != nil {
			return value.Value{}, err
		}
		if !l.Bool() {
			return value.B(false), nil
		}
		r, err := Eval(e.R, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.B(r.Bool()), nil
	case "||":
		l, err := Eval(e.L, env)
		if err != nil {
			return value.Value{}, err
		}
		if l.Bool() {
			return value.B(true), nil
		}
		r, err := Eval(e.R, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.B(r.Bool()), nil
	}
	l, err := Eval(e.L, env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := Eval(e.R, env)
	if err != nil {
		return value.Value{}, err
	}
	switch e.Op {
	case "+", "-", "*", "/", "%":
		return value.Arith(e.Op[0], l, r)
	case "==":
		return value.B(value.Equal(l, r)), nil
	case "!=":
		return value.B(!value.Equal(l, r)), nil
	case "<", "<=", ">", ">=":
		c, err := value.Compare(l, r)
		if err != nil {
			return value.Value{}, err
		}
		switch e.Op {
		case "<":
			return value.B(c < 0), nil
		case "<=":
			return value.B(c <= 0), nil
		case ">":
			return value.B(c > 0), nil
		default:
			return value.B(c >= 0), nil
		}
	}
	return value.Value{}, fmt.Errorf("expr: unknown operator %q", e.Op)
}

// EvalBool evaluates n and coerces the result to a truth value; it is the
// guard-evaluation entry point used by state machine function blocks and
// breakpoint predicates.
func EvalBool(n Node, env Env) (bool, error) {
	v, err := Eval(n, env)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}
