// Package expr implements the small expression language used throughout the
// COMDES models reproduced in this repository: transition guards and actions
// of state machine function blocks, transfer formulas of basic function
// blocks, and signal-predicate breakpoints in the model debugger.
//
// Grammar (precedence climbing, lowest first):
//
//	or:      and ("||" and)*
//	and:     cmp ("&&" cmp)*
//	cmp:     add (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add:     mul (("+"|"-") mul)*
//	mul:     unary (("*"|"/"|"%") unary)*
//	unary:   ("-"|"!")* primary
//	primary: number | string | "true" | "false" | ident | ident "(" args ")" | "(" or ")"
//
// Identifiers may be dotted (actor.signal) to reference hierarchical names.
package expr

import (
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp // + - * / % ! < > ( ) , and two-char ops
	tokBoolLit
)

// token is a single lexeme with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits an expression string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// twoCharOps are the operators that consume two characters.
var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

// lex tokenizes src, returning a token slice terminated by tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// Lookahead: "1.x" where x is not a digit would merge a dotted
			// identifier; require digit or end after the dot inside numbers.
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") || strings.HasSuffix(text, "e") || strings.HasSuffix(text, "E") ||
		strings.HasSuffix(text, "+") || strings.HasSuffix(text, "-") {
		return errAt(start, "malformed number %q", text)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return errAt(start, "unterminated escape")
			}
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return errAt(l.pos, "unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return errAt(start, "unterminated string")
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if text == "true" || text == "false" {
		kind = tokBoolLit
	}
	l.toks = append(l.toks, token{kind: kind, text: text, pos: start})
}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.toks = append(l.toks, token{kind: tokOp, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '!', '(', ')', ',', '=':
		if c == '=' {
			return errAt(l.pos, "single '=' (use '==')")
		}
		l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return errAt(l.pos, "unexpected character %q", c)
}
