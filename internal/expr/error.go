package expr

import (
	"fmt"
	"strings"
)

// Error is a positioned expression error. Every lexical and syntactic
// failure in this package carries the byte offset (into the original
// source string) at which the problem was detected, so embedding hosts
// (the scenario DSL, breakpoint conditions typed at a prompt) can map
// it onto their own coordinate system.
type Error struct {
	Offset int    // byte offset into the parsed source
	Msg    string // human-readable description, without position
}

func (e *Error) Error() string {
	return fmt.Sprintf("expr: %s at offset %d", e.Msg, e.Offset)
}

// errAt builds a positioned error.
func errAt(off int, format string, args ...any) error {
	return &Error{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// Position extracts the byte offset from an error returned by Parse or
// lex. The second result is false for foreign errors.
func Position(err error) (int, bool) {
	if pe, ok := err.(*Error); ok {
		return pe.Offset, true
	}
	return 0, false
}

// LineCol maps a byte offset in src to 1-based line and column numbers.
// Columns count bytes from the start of the line (the sources this
// package sees are ASCII). Offsets past the end of src report the
// position just after the final byte.
func LineCol(src string, off int) (line, col int) {
	if off < 0 {
		off = 0
	}
	if off > len(src) {
		off = len(src)
	}
	line = 1 + strings.Count(src[:off], "\n")
	if i := strings.LastIndexByte(src[:off], '\n'); i >= 0 {
		col = off - i
	} else {
		col = off + 1
	}
	return line, col
}
