package comdes

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// The prefabricated component registry: COMDES configures applications
// "from prefabricated executable components such as basic (signal
// processing) ... function blocks". Each entry manufactures a ready-made
// BasicFB from a parameter set, the way the COMDES toolset instantiates
// library blocks.

// Factory builds a named block instance from parameters.
type Factory func(instanceName string, params map[string]value.Value) (Block, error)

var registry = map[string]Factory{}

// Register adds a component factory; duplicate kinds panic (registration
// happens in init).
func Register(kind string, f Factory) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("comdes: duplicate component kind %q", kind))
	}
	registry[kind] = f
}

// NewComponent instantiates a registered prefabricated component.
func NewComponent(kind, name string, params map[string]value.Value) (Block, error) {
	f, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("comdes: unknown component kind %q (have %v)", kind, ComponentKinds())
	}
	return f(name, params)
}

// MustComponent is NewComponent that panics; for fixtures.
func MustComponent(kind, name string, params map[string]value.Value) Block {
	b, err := NewComponent(kind, name, params)
	if err != nil {
		panic(err)
	}
	return b
}

// ComponentKinds lists the registered prefabricated components.
func ComponentKinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func paramOr(params map[string]value.Value, name string, def value.Value) value.Value {
	if v, ok := params[name]; ok {
		return v
	}
	return def
}

func fp(name string) []Port { return []Port{{Name: name, Kind: value.Float}} }

func init() {
	// const: emits parameter "value".
	Register("const", func(name string, params map[string]value.Value) (Block, error) {
		v := paramOr(params, "value", value.F(0))
		return NewBasicFB(name, nil, fp("out"),
			map[string]value.Value{"value": v},
			map[string]string{"out": "value"})
	})
	// gain: out = in * k.
	Register("gain", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, fp("in"), fp("out"),
			map[string]value.Value{"k": paramOr(params, "k", value.F(1))},
			map[string]string{"out": "in * k"})
	})
	// sum: out = a + b.
	Register("sum", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, []Port{{"a", value.Float}, {"b", value.Float}}, fp("out"),
			nil, map[string]string{"out": "a + b"})
	})
	// sub: out = a - b.
	Register("sub", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, []Port{{"a", value.Float}, {"b", value.Float}}, fp("out"),
			nil, map[string]string{"out": "a - b"})
	})
	// mul: out = a * b.
	Register("mul", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, []Port{{"a", value.Float}, {"b", value.Float}}, fp("out"),
			nil, map[string]string{"out": "a * b"})
	})
	// limit: out = clamp(in, lo, hi).
	Register("limit", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, fp("in"), fp("out"),
			map[string]value.Value{
				"lo": paramOr(params, "lo", value.F(0)),
				"hi": paramOr(params, "hi", value.F(1)),
			},
			map[string]string{"out": "clamp(in, lo, hi)"})
	})
	// compare: out = 1 if in > threshold else 0 (bool output).
	Register("compare", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, fp("in"), []Port{{"out", value.Bool}},
			map[string]value.Value{"threshold": paramOr(params, "threshold", value.F(0))},
			map[string]string{"out": "in > threshold"})
	})
	// deadband: zero small inputs.
	Register("deadband", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, fp("in"), fp("out"),
			map[string]value.Value{"width": paramOr(params, "width", value.F(0.1))},
			map[string]string{"out": "in * sign(abs(in) - width > 0)"})
	})
	// p_controller: out = kp * (setpoint - in).
	Register("p_controller", func(name string, params map[string]value.Value) (Block, error) {
		return NewBasicFB(name, []Port{{"in", value.Float}, {"setpoint", value.Float}}, fp("out"),
			map[string]value.Value{"kp": paramOr(params, "kp", value.F(1))},
			map[string]string{"out": "kp * (setpoint - in)"})
	})
	// hysteresis: stateful two-point switch built as a 2-state machine.
	Register("hysteresis", func(name string, params map[string]value.Value) (Block, error) {
		lo := paramOr(params, "lo", value.F(0)).String()
		hi := paramOr(params, "hi", value.F(1)).String()
		return NewStateMachineFB(SMConfig{
			Name:    name,
			Inputs:  fp("in"),
			Outputs: []Port{{"out", value.Bool}},
			Initial: "off",
			States: []SMStateDef{
				{Name: "off", Entry: map[string]string{"out": "false"}},
				{Name: "on", Entry: map[string]string{"out": "true"}},
			},
			Transitions: []SMTransitionDef{
				{From: "off", To: "on", Guard: "in < " + lo},
				{From: "on", To: "off", Guard: "in > " + hi},
			},
		})
	})
}
