// Package comdes reproduces the COMDES-II component framework the paper
// uses as its input modelling language (Angelov, Ke, Sierszecki: "A
// Component-Based Framework for Distributed Control Systems"; Sec. III of
// the paper).
//
// A COMDES application is a network of distributed embedded *actors*
// exchanging labelled signals via non-blocking state-message communication.
// Each actor hosts a network of prefabricated executable *function blocks*:
//
//   - basic FBs      — pure signal-processing transfer functions,
//   - composite FBs  — nested FB networks,
//   - modal FBs      — mode-dependent behaviour selected by a control input,
//   - state machine FBs — event-driven state transition graphs.
//
// The package provides the language constructs, a reference synchronous
// interpreter (actor behaviour as a composite input→output function, per
// the paper), validation, the prefabricated component registry, and a
// bridge to the reflective metamodel substrate so GMDF's abstraction
// engine can consume COMDES designs like any other MOF model.
package comdes

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// Port declares one typed input or output of a block or actor.
type Port struct {
	Name string
	Kind value.Kind
}

// Block is the common behaviour of all function blocks: a named,
// synchronous input→output step function with resettable internal state.
type Block interface {
	Name() string
	Inputs() []Port
	Outputs() []Port
	// Step performs one synchronous evaluation. Implementations must not
	// mutate the input map.
	Step(in map[string]value.Value) (map[string]value.Value, error)
	// Reset restores initial internal state (FSM initial state, delays).
	Reset()
}

// ---- Basic function block ----

// BasicFB is a stateless signal-processing block: each output is defined
// by an expression over the inputs and the block's parameters.
type BasicFB struct {
	name     string
	inputs   []Port
	outputs  []Port
	params   map[string]value.Value
	formulas map[string]expr.Node // output name -> expression
}

// NewBasicFB builds a basic block; formulas maps each output to its
// defining expression source.
func NewBasicFB(name string, inputs, outputs []Port, params map[string]value.Value, formulas map[string]string) (*BasicFB, error) {
	if name == "" {
		return nil, fmt.Errorf("comdes: basic FB with empty name")
	}
	fb := &BasicFB{name: name, inputs: inputs, outputs: outputs,
		params: map[string]value.Value{}, formulas: map[string]expr.Node{}}
	for k, v := range params {
		fb.params[k] = v
	}
	known := map[string]bool{}
	for _, p := range inputs {
		known[p.Name] = true
	}
	for k := range params {
		known[k] = true
	}
	for _, out := range outputs {
		src, ok := formulas[out.Name]
		if !ok {
			return nil, fmt.Errorf("comdes: %s: output %q has no formula", name, out.Name)
		}
		node, err := expr.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s.%s: %w", name, out.Name, err)
		}
		for _, v := range expr.Vars(node) {
			if !known[v] {
				return nil, fmt.Errorf("comdes: %s.%s: unbound name %q", name, out.Name, v)
			}
		}
		fb.formulas[out.Name] = node
	}
	for out := range formulas {
		if !hasPort(outputs, out) {
			return nil, fmt.Errorf("comdes: %s: formula for unknown output %q", name, out)
		}
	}
	return fb, nil
}

func hasPort(ports []Port, name string) bool {
	for _, p := range ports {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Name implements Block.
func (b *BasicFB) Name() string { return b.name }

// Inputs implements Block.
func (b *BasicFB) Inputs() []Port { return b.inputs }

// Outputs implements Block.
func (b *BasicFB) Outputs() []Port { return b.outputs }

// Params returns the block's parameter set (read-only view).
func (b *BasicFB) Params() map[string]value.Value { return b.params }

// Formula returns the expression defining an output (for codegen).
func (b *BasicFB) Formula(output string) expr.Node { return b.formulas[output] }

// Reset implements Block (basic blocks are stateless).
func (b *BasicFB) Reset() {}

// Step implements Block.
func (b *BasicFB) Step(in map[string]value.Value) (map[string]value.Value, error) {
	env := make(expr.MapEnv, len(in)+len(b.params))
	for k, v := range in {
		env[k] = v
	}
	for k, v := range b.params {
		env[k] = v
	}
	out := make(map[string]value.Value, len(b.outputs))
	for _, p := range b.outputs {
		v, err := expr.Eval(b.formulas[p.Name], env)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s.%s: %w", b.name, p.Name, err)
		}
		cv, err := value.Convert(v, p.Kind)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s.%s: %w", b.name, p.Name, err)
		}
		out[p.Name] = cv
	}
	return out, nil
}

// ---- State machine function block ----

// SMState is one state of a state machine FB. Entry assignments define the
// block's outputs while the state is active (Moore outputs).
type SMState struct {
	Name  string
	Entry map[string]expr.Node
}

// SMTransition is a guarded transition. Action assignments override entry
// assignments on the cycle the transition fires (Mealy overlay).
type SMTransition struct {
	Name    string
	From    string
	To      string
	Guard   expr.Node
	Actions map[string]expr.Node
}

// StateMachineFB is an event-driven state transition graph. Its Step
// semantics (shared exactly by the code generator):
//
//  1. evaluate the outgoing transitions of the current state in
//     declaration order; the first true guard fires;
//  2. the current state becomes the transition target;
//  3. outputs = entry assignments of the (possibly new) current state,
//     overlaid with the fired transition's action assignments;
//  4. unassigned outputs keep their kind's zero value.
type StateMachineFB struct {
	name        string
	inputs      []Port
	outputs     []Port
	states      []*SMState
	transitions []*SMTransition
	initial     string
	current     string

	stateIdx map[string]int
	outgoing map[string][]*SMTransition

	// LastFired records the transition taken on the most recent Step (nil
	// if none) so interpreters can report model-level events.
	LastFired *SMTransition
}

// SMConfig collects the pieces of a state machine FB for construction.
type SMConfig struct {
	Name        string
	Inputs      []Port
	Outputs     []Port
	Initial     string
	States      []SMStateDef
	Transitions []SMTransitionDef
}

// SMStateDef declares a state with textual entry assignments.
type SMStateDef struct {
	Name  string
	Entry map[string]string
}

// SMTransitionDef declares a transition with textual guard and actions.
type SMTransitionDef struct {
	Name    string
	From    string
	To      string
	Guard   string
	Actions map[string]string
}

// NewStateMachineFB validates and builds a state machine block.
func NewStateMachineFB(cfg SMConfig) (*StateMachineFB, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("comdes: state machine with empty name")
	}
	if len(cfg.States) == 0 {
		return nil, fmt.Errorf("comdes: %s: no states", cfg.Name)
	}
	fb := &StateMachineFB{
		name: cfg.Name, inputs: cfg.Inputs, outputs: cfg.Outputs,
		initial: cfg.Initial, stateIdx: map[string]int{}, outgoing: map[string][]*SMTransition{},
	}
	known := map[string]bool{}
	for _, p := range cfg.Inputs {
		known[p.Name] = true
	}
	for i, sd := range cfg.States {
		if _, dup := fb.stateIdx[sd.Name]; dup {
			return nil, fmt.Errorf("comdes: %s: duplicate state %q", cfg.Name, sd.Name)
		}
		st := &SMState{Name: sd.Name, Entry: map[string]expr.Node{}}
		for out, src := range sd.Entry {
			if !hasPort(cfg.Outputs, out) {
				return nil, fmt.Errorf("comdes: %s state %s: unknown output %q", cfg.Name, sd.Name, out)
			}
			node, err := expr.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("comdes: %s state %s entry %s: %w", cfg.Name, sd.Name, out, err)
			}
			if err := checkVars(node, known); err != nil {
				return nil, fmt.Errorf("comdes: %s state %s entry %s: %w", cfg.Name, sd.Name, out, err)
			}
			st.Entry[out] = node
		}
		fb.states = append(fb.states, st)
		fb.stateIdx[sd.Name] = i
	}
	if cfg.Initial == "" {
		fb.initial = cfg.States[0].Name
	}
	if _, ok := fb.stateIdx[fb.initial]; !ok {
		return nil, fmt.Errorf("comdes: %s: unknown initial state %q", cfg.Name, fb.initial)
	}
	for i, td := range cfg.Transitions {
		if _, ok := fb.stateIdx[td.From]; !ok {
			return nil, fmt.Errorf("comdes: %s transition %d: unknown source %q", cfg.Name, i, td.From)
		}
		if _, ok := fb.stateIdx[td.To]; !ok {
			return nil, fmt.Errorf("comdes: %s transition %d: unknown target %q", cfg.Name, i, td.To)
		}
		guard, err := expr.Parse(td.Guard)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s transition %s->%s guard: %w", cfg.Name, td.From, td.To, err)
		}
		if err := checkVars(guard, known); err != nil {
			return nil, fmt.Errorf("comdes: %s transition %s->%s guard: %w", cfg.Name, td.From, td.To, err)
		}
		tr := &SMTransition{Name: td.Name, From: td.From, To: td.To, Guard: guard, Actions: map[string]expr.Node{}}
		if tr.Name == "" {
			tr.Name = fmt.Sprintf("%s_to_%s_%d", td.From, td.To, i)
		}
		for out, src := range td.Actions {
			if !hasPort(cfg.Outputs, out) {
				return nil, fmt.Errorf("comdes: %s transition %s: unknown output %q", cfg.Name, tr.Name, out)
			}
			node, err := expr.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("comdes: %s transition %s action %s: %w", cfg.Name, tr.Name, out, err)
			}
			if err := checkVars(node, known); err != nil {
				return nil, fmt.Errorf("comdes: %s transition %s action %s: %w", cfg.Name, tr.Name, out, err)
			}
			tr.Actions[out] = node
		}
		fb.transitions = append(fb.transitions, tr)
		fb.outgoing[td.From] = append(fb.outgoing[td.From], tr)
	}
	fb.current = fb.initial
	return fb, nil
}

func checkVars(n expr.Node, known map[string]bool) error {
	for _, v := range expr.Vars(n) {
		if !known[v] {
			return fmt.Errorf("unbound name %q", v)
		}
	}
	return nil
}

// Name implements Block.
func (m *StateMachineFB) Name() string { return m.name }

// Inputs implements Block.
func (m *StateMachineFB) Inputs() []Port { return m.inputs }

// Outputs implements Block.
func (m *StateMachineFB) Outputs() []Port { return m.outputs }

// States returns the machine's states in declaration order.
func (m *StateMachineFB) States() []*SMState { return m.states }

// Transitions returns the machine's transitions in declaration order.
func (m *StateMachineFB) Transitions() []*SMTransition { return m.transitions }

// Outgoing returns the transitions leaving a state in declaration order.
func (m *StateMachineFB) Outgoing(state string) []*SMTransition { return m.outgoing[state] }

// Initial returns the initial state name.
func (m *StateMachineFB) Initial() string { return m.initial }

// Current returns the active state name.
func (m *StateMachineFB) Current() string { return m.current }

// StateIndex returns the numeric index codegen assigns to a state.
func (m *StateMachineFB) StateIndex(name string) (int, bool) {
	i, ok := m.stateIdx[name]
	return i, ok
}

// Reset implements Block.
func (m *StateMachineFB) Reset() {
	m.current = m.initial
	m.LastFired = nil
}

// Step implements Block.
func (m *StateMachineFB) Step(in map[string]value.Value) (map[string]value.Value, error) {
	env := make(expr.MapEnv, len(in))
	for k, v := range in {
		env[k] = v
	}
	m.LastFired = nil
	for _, tr := range m.outgoing[m.current] {
		ok, err := expr.EvalBool(tr.Guard, env)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s guard %s: %w", m.name, tr.Name, err)
		}
		if ok {
			m.current = tr.To
			m.LastFired = tr
			break
		}
	}
	out := make(map[string]value.Value, len(m.outputs))
	for _, p := range m.outputs {
		out[p.Name] = value.Zero(p.Kind)
	}
	st := m.states[m.stateIdx[m.current]]
	for name, node := range st.Entry {
		v, err := expr.Eval(node, env)
		if err != nil {
			return nil, fmt.Errorf("comdes: %s state %s entry %s: %w", m.name, st.Name, name, err)
		}
		out[name] = mustConvert(v, portKind(m.outputs, name))
	}
	if m.LastFired != nil {
		for name, node := range m.LastFired.Actions {
			v, err := expr.Eval(node, env)
			if err != nil {
				return nil, fmt.Errorf("comdes: %s action %s: %w", m.name, name, err)
			}
			out[name] = mustConvert(v, portKind(m.outputs, name))
		}
	}
	return out, nil
}

func portKind(ports []Port, name string) value.Kind {
	for _, p := range ports {
		if p.Name == name {
			return p.Kind
		}
	}
	return value.Invalid
}

func mustConvert(v value.Value, k value.Kind) value.Value {
	cv, err := value.Convert(v, k)
	if err != nil {
		return value.Zero(k)
	}
	return cv
}

// ---- Modal function block ----

// ModalMode couples a selector value with the block active in that mode.
type ModalMode struct {
	Selector int64
	Block    Block
}

// ModalFB switches between mode blocks based on an integer selector input.
// All mode blocks must share the modal block's output ports; their inputs
// are fed from the modal block's inputs by name.
type ModalFB struct {
	name     string
	selector string // name of the selector input
	inputs   []Port
	outputs  []Port
	modes    []ModalMode
	fallback Block
}

// NewModalFB builds a modal block. fallback (may be nil) runs when no
// selector matches; with a nil fallback, outputs are zero values.
func NewModalFB(name, selector string, inputs, outputs []Port, modes []ModalMode, fallback Block) (*ModalFB, error) {
	if name == "" {
		return nil, fmt.Errorf("comdes: modal FB with empty name")
	}
	if !hasPort(inputs, selector) {
		return nil, fmt.Errorf("comdes: %s: selector %q is not an input", name, selector)
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("comdes: %s: no modes", name)
	}
	seen := map[int64]bool{}
	for _, md := range modes {
		if md.Block == nil {
			return nil, fmt.Errorf("comdes: %s: mode %d has no block", name, md.Selector)
		}
		if seen[md.Selector] {
			return nil, fmt.Errorf("comdes: %s: duplicate mode selector %d", name, md.Selector)
		}
		seen[md.Selector] = true
		for _, out := range outputs {
			if !hasPort(md.Block.Outputs(), out.Name) {
				return nil, fmt.Errorf("comdes: %s mode %d: block %s lacks output %q", name, md.Selector, md.Block.Name(), out.Name)
			}
		}
	}
	return &ModalFB{name: name, selector: selector, inputs: inputs, outputs: outputs, modes: modes, fallback: fallback}, nil
}

// Name implements Block.
func (m *ModalFB) Name() string { return m.name }

// Inputs implements Block.
func (m *ModalFB) Inputs() []Port { return m.inputs }

// Outputs implements Block.
func (m *ModalFB) Outputs() []Port { return m.outputs }

// Selector returns the selector input name.
func (m *ModalFB) Selector() string { return m.selector }

// Modes returns the mode table.
func (m *ModalFB) Modes() []ModalMode { return m.modes }

// Fallback returns the default block (may be nil).
func (m *ModalFB) Fallback() Block { return m.fallback }

// Reset implements Block.
func (m *ModalFB) Reset() {
	for _, md := range m.modes {
		md.Block.Reset()
	}
	if m.fallback != nil {
		m.fallback.Reset()
	}
}

// Step implements Block.
func (m *ModalFB) Step(in map[string]value.Value) (map[string]value.Value, error) {
	sel, ok := in[m.selector]
	if !ok {
		return nil, fmt.Errorf("comdes: %s: selector input %q missing", m.name, m.selector)
	}
	var active Block
	for _, md := range m.modes {
		if md.Selector == sel.Int() {
			active = md.Block
			break
		}
	}
	if active == nil {
		active = m.fallback
	}
	if active == nil {
		out := make(map[string]value.Value, len(m.outputs))
		for _, p := range m.outputs {
			out[p.Name] = value.Zero(p.Kind)
		}
		return out, nil
	}
	inner, err := active.Step(in)
	if err != nil {
		return nil, err
	}
	out := make(map[string]value.Value, len(m.outputs))
	for _, p := range m.outputs {
		v, ok := inner[p.Name]
		if !ok {
			v = value.Zero(p.Kind)
		}
		out[p.Name] = mustConvert(v, p.Kind)
	}
	return out, nil
}
