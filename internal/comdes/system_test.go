package comdes

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metamodel"
	"repro/internal/value"
)

// heaterActor builds the paper-style control actor: a sensor input feeds a
// thermostat state machine; its power output is scaled and limited.
func heaterActor(t testing.TB) *Actor {
	net := NewNetwork("ctrlnet",
		[]Port{{"temp", value.Float}},
		[]Port{{"heat", value.Bool}, {"power", value.Float}})
	net.MustAdd(heaterSM(t))
	net.MustAdd(MustComponent("limit", "lim", map[string]value.Value{"lo": value.F(0), "hi": value.F(100)}))
	net.MustConnect("", "temp", "ctrl", "temp").
		MustConnect("ctrl", "heat", "", "heat").
		MustConnect("ctrl", "power", "lim", "in").
		MustConnect("lim", "out", "", "power")
	a, err := NewActor("heater", net, TaskSpec{PeriodNs: 10_000_000, DeadlineNs: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// plantActor consumes power and produces temperature (a trivial model:
// temp = 15 + power/10, standing in for a sensor path).
func plantActor(t testing.TB) *Actor {
	net := NewNetwork("plantnet",
		[]Port{{"power", value.Float}},
		[]Port{{"temp", value.Float}})
	fb, err := NewBasicFB("th", []Port{{"p", value.Float}}, []Port{{"t", value.Float}},
		nil, map[string]string{"t": "15 + p / 10"})
	if err != nil {
		t.Fatal(err)
	}
	net.MustAdd(fb)
	net.MustConnect("", "power", "th", "p").MustConnect("th", "t", "", "temp")
	a, err := NewActor("plant", net, TaskSpec{PeriodNs: 10_000_000, DeadlineNs: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func heaterSystem(t testing.TB) *System {
	sys := NewSystem("heating")
	sys.MustAddActor(heaterActor(t)).MustAddActor(plantActor(t))
	sys.MustBind("power_sig", "heater", "power", "plant", "power")
	sys.MustBind("temp_sig", "plant", "temp", "heater", "temp")
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTaskSpecValidation(t *testing.T) {
	if err := (TaskSpec{}).Validate(); err == nil {
		t.Error("zero period should fail")
	}
	if err := (TaskSpec{PeriodNs: 10}).Validate(); err == nil {
		t.Error("zero deadline should fail")
	}
	if err := (TaskSpec{PeriodNs: 10, DeadlineNs: 11}).Validate(); err == nil {
		t.Error("deadline > period should fail")
	}
	if err := (TaskSpec{PeriodNs: 10, DeadlineNs: 10}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestActorConstruction(t *testing.T) {
	a := heaterActor(t)
	if a.Name() != "heater" || len(a.Inputs()) != 1 || len(a.Outputs()) != 2 {
		t.Error("actor interface wrong")
	}
	if _, err := NewActor("", a.Net, a.Task); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewActor("x", a.Net, TaskSpec{}); err == nil {
		t.Error("bad task should fail")
	}
	bad := NewNetwork("b", nil, []Port{{"o", value.Float}})
	if _, err := NewActor("x", bad, TaskSpec{PeriodNs: 1, DeadlineNs: 1}); err == nil {
		t.Error("invalid network should fail")
	}
}

func TestSystemConstruction(t *testing.T) {
	sys := heaterSystem(t)
	if sys.Actor("heater") == nil || sys.Actor("ghost") != nil {
		t.Error("Actor lookup broken")
	}
	if err := sys.AddActor(heaterActor(t)); err == nil {
		t.Error("duplicate actor should fail")
	}
	if err := sys.Bind("s", "ghost", "x", "plant", "power"); err == nil {
		t.Error("unknown source actor should fail")
	}
	if err := sys.Bind("s", "heater", "x", "plant", "power"); err == nil {
		t.Error("unknown source port should fail")
	}
	if err := sys.Bind("s", "heater", "power", "ghost", "x"); err == nil {
		t.Error("unknown dest actor should fail")
	}
	if err := sys.Bind("s", "heater", "power", "plant", "x"); err == nil {
		t.Error("unknown dest port should fail")
	}
	if err := sys.Bind("s2", "heater", "power", "plant", "power"); err == nil {
		t.Error("double-bound input should fail")
	}
	if err := NewSystem("empty").Validate(); err == nil {
		t.Error("empty system should fail validation")
	}
}

func TestPlacementAndNodes(t *testing.T) {
	sys := heaterSystem(t)
	if got := sys.Nodes(); len(got) != 1 || got[0] != "main" {
		t.Errorf("default nodes = %v", got)
	}
	if err := sys.Place("ghost", "n1"); err == nil {
		t.Error("placing unknown actor should fail")
	}
	if err := sys.Place("plant", "node2"); err != nil {
		t.Fatal(err)
	}
	if sys.NodeOf("plant") != "node2" || sys.NodeOf("heater") != "main" {
		t.Error("NodeOf wrong")
	}
	if got := sys.Nodes(); len(got) != 2 || got[0] != "main" || got[1] != "node2" {
		t.Errorf("nodes = %v", got)
	}
}

func TestInterpreterClosedLoop(t *testing.T) {
	sys := heaterSystem(t)
	it := NewInterpreter(sys)
	// Cycle the loop: plant publishes temp, heater reacts.
	var states []string
	sm := sys.Actor("heater").Net.Block("ctrl").(*StateMachineFB)
	for i := 0; i < 10; i++ {
		if _, err := it.StepActor("plant"); err != nil {
			t.Fatal(err)
		}
		if _, err := it.StepActor("heater"); err != nil {
			t.Fatal(err)
		}
		states = append(states, sm.Current())
	}
	joined := strings.Join(states, ",")
	// Initial temp 15 (<19): heater turns on; power 100 raises temp to 25
	// (>21): heater turns off; temp falls back to 15: on again — limit cycle.
	if !strings.Contains(joined, "Heating") || !strings.Contains(joined, "Idle") {
		t.Errorf("no limit cycle: %s", joined)
	}
	if v, ok := it.Board()["temp_sig"]; !ok || !v.IsValid() {
		t.Error("board missing temp_sig")
	}
	if _, err := it.StepActor("ghost"); err == nil {
		t.Error("unknown actor should fail")
	}
}

func TestInterpreterEnvInputs(t *testing.T) {
	sys := NewSystem("solo")
	sys.MustAddActor(heaterActor(t))
	it := NewInterpreter(sys)
	it.Env["heater.temp"] = value.F(10) // cold: must switch to Heating
	if _, err := it.StepActor("heater"); err != nil {
		t.Fatal(err)
	}
	sm := sys.Actor("heater").Net.Block("ctrl").(*StateMachineFB)
	if sm.Current() != "Heating" {
		t.Errorf("env input not applied: %s", sm.Current())
	}
	// Unprefixed env key also resolves.
	it2 := NewInterpreter(sys)
	it2.Env["temp"] = value.F(25)
	it2.StepActor("heater")
	if sm.Current() != "Idle" {
		t.Errorf("unprefixed env: %s", sm.Current())
	}
}

func TestBridgeToModelAndBack(t *testing.T) {
	meta := Metamodel()
	sys := heaterSystem(t)
	mod, err := ToModel(sys, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reflected model contains the expected element ids.
	for _, id := range []string{
		SystemID("heating"), ActorID("heater"), ActorID("plant"),
		BlockID("heater.ctrl"), BlockID("heater.lim"),
		StateID("heater.ctrl", "Idle"), StateID("heater.ctrl", "Heating"),
		TransitionID("heater.ctrl", "cold"), TransitionID("heater.ctrl", "warm"),
		"bind:power_sig", "bind:temp_sig",
	} {
		if mod.Lookup(id) == nil {
			t.Errorf("model missing %s", id)
		}
	}
	// States of the machine: exactly 2.
	if got := len(mod.InstancesOf("State")); got != 4 { // 2 thermostat + 0… hysteresis? none here. Idle,Heating only = 2? lim has none.
		// heaterSM has 2 states; there is no other SM. Expect 2.
		if got != 2 {
			t.Errorf("state count = %d", got)
		}
	}

	// Roundtrip back to an executable system.
	sys2, err := FromModel(mod)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Name() != "heating" || len(sys2.Actors) != 2 || len(sys2.Bindings) != 2 {
		t.Fatal("roundtrip shape wrong")
	}
	// Behavioural equivalence: run both interpreters 20 cycles.
	it1, it2 := NewInterpreter(heaterSystem(t)), NewInterpreter(sys2)
	for i := 0; i < 20; i++ {
		for _, actor := range []string{"plant", "heater"} {
			o1, err1 := it1.StepActor(actor)
			o2, err2 := it2.StepActor(actor)
			if err1 != nil || err2 != nil {
				t.Fatalf("cycle %d %s: %v / %v", i, actor, err1, err2)
			}
			for k, v := range o1 {
				if !value.Equal(v, o2[k]) {
					t.Fatalf("cycle %d %s.%s: %v != %v", i, actor, k, v, o2[k])
				}
			}
		}
	}
}

func TestBridgeXMLRoundtrip(t *testing.T) {
	meta := Metamodel()
	sys := heaterSystem(t)
	mod, err := ToModel(sys, meta)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mod.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	mod2, err := metamodel.ReadModelXML(meta, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := FromModel(mod2)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Name() != sys.Name() || len(sys2.Actors) != len(sys.Actors) {
		t.Error("XML roundtrip lost structure")
	}
}

func TestBridgeModalAndComposite(t *testing.T) {
	meta := Metamodel()
	inner := pipelineNet(t)
	comp, _ := NewCompositeFB(inner)
	lowMode := MustComponent("gain", "low", map[string]value.Value{"k": value.F(1)})
	highMode := MustComponent("gain", "high", map[string]value.Value{"k": value.F(10)})
	modal, err := NewModalFB("sel", "mode",
		[]Port{{"in", value.Float}, {"mode", value.Int}},
		[]Port{{"out", value.Float}},
		[]ModalMode{{1, lowMode}, {2, highMode}},
		MustComponent("const", "dflt", nil))
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork("mixnet",
		[]Port{{"x", value.Float}, {"mode", value.Int}},
		[]Port{{"y", value.Float}})
	net.MustAdd(comp).MustAdd(modal)
	net.MustConnect("", "x", "pipe", "in").
		MustConnect("pipe", "out", "sel", "in").
		MustConnect("", "mode", "sel", "mode").
		MustConnect("sel", "out", "", "y")
	a, err := NewActor("mixer", net, TaskSpec{PeriodNs: 1000, DeadlineNs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem("mix")
	sys.MustAddActor(a)
	mod, err := ToModel(sys, meta)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := FromModel(mod)
	if err != nil {
		t.Fatal(err)
	}
	// Behaviour preserved through reflection.
	it1, it2 := NewInterpreter(sys), NewInterpreter(sys2)
	for _, mode := range []int64{1, 2, 9} {
		it1.Env["mixer.x"], it1.Env["mixer.mode"] = value.F(4), value.I(mode)
		it2.Env["mixer.x"], it2.Env["mixer.mode"] = value.F(4), value.I(mode)
		o1, err1 := it1.StepActor("mixer")
		o2, err2 := it2.StepActor("mixer")
		if err1 != nil || err2 != nil {
			t.Fatalf("mode %d: %v / %v", mode, err1, err2)
		}
		if !value.Equal(o1["y"], o2["y"]) {
			t.Errorf("mode %d: %v != %v", mode, o1["y"], o2["y"])
		}
	}
}

func TestFromModelErrors(t *testing.T) {
	meta := Metamodel()
	mod := metamodel.NewModel(meta)
	if _, err := FromModel(mod); err == nil {
		t.Error("empty model should fail")
	}
	// Root that is not a System.
	mod2 := metamodel.NewModel(meta)
	a := mod2.MustObject("Actor", "a")
	a.MustSet("name", value.S("x"))
	if err := mod2.AddRoot(a); err != nil {
		t.Fatal(err)
	}
	if _, err := FromModel(mod2); err == nil {
		t.Error("non-System root should fail")
	}
}
