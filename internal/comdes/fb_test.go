package comdes

import (
	"math"
	"testing"

	"repro/internal/value"
)

func TestBasicFBStep(t *testing.T) {
	fb, err := NewBasicFB("scale",
		[]Port{{"in", value.Float}},
		[]Port{{"out", value.Float}},
		map[string]value.Value{"k": value.F(2.5)},
		map[string]string{"out": "in * k"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := fb.Step(map[string]value.Value{"in": value.F(4)})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"].Float() != 10 {
		t.Errorf("out = %v", out["out"])
	}
	if fb.Name() != "scale" || len(fb.Inputs()) != 1 || len(fb.Outputs()) != 1 {
		t.Error("identity accessors wrong")
	}
	if fb.Formula("out") == nil {
		t.Error("Formula accessor broken")
	}
	fb.Reset() // no-op, must not panic
}

func TestBasicFBOutputConversion(t *testing.T) {
	fb, err := NewBasicFB("cmp", []Port{{"in", value.Float}}, []Port{{"hot", value.Bool}},
		nil, map[string]string{"hot": "in > 30"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := fb.Step(map[string]value.Value{"in": value.F(31)})
	if err != nil {
		t.Fatal(err)
	}
	if out["hot"].Kind() != value.Bool || !out["hot"].Bool() {
		t.Errorf("hot = %v", out["hot"])
	}
}

func TestBasicFBErrors(t *testing.T) {
	if _, err := NewBasicFB("", nil, nil, nil, nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewBasicFB("b", nil, []Port{{"out", value.Float}}, nil, map[string]string{}); err == nil {
		t.Error("missing formula should fail")
	}
	if _, err := NewBasicFB("b", nil, []Port{{"out", value.Float}}, nil,
		map[string]string{"out": "1 +"}); err == nil {
		t.Error("bad formula should fail")
	}
	if _, err := NewBasicFB("b", nil, []Port{{"out", value.Float}}, nil,
		map[string]string{"out": "ghost + 1"}); err == nil {
		t.Error("unbound variable should fail")
	}
	if _, err := NewBasicFB("b", nil, []Port{{"out", value.Float}}, nil,
		map[string]string{"out": "1", "extra": "2"}); err == nil {
		t.Error("formula for unknown output should fail")
	}
	// Runtime error: division by zero input.
	fb, err := NewBasicFB("d", []Port{{"in", value.Float}}, []Port{{"out", value.Float}},
		nil, map[string]string{"out": "1 / in"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Step(map[string]value.Value{"in": value.F(0)}); err == nil {
		t.Error("runtime error should propagate")
	}
}

// heaterSM builds the canonical thermostat machine used across the tests:
// Idle -> Heating when temp < low, Heating -> Idle when temp > high.
func heaterSM(t testing.TB) *StateMachineFB {
	fb, err := NewStateMachineFB(SMConfig{
		Name:    "ctrl",
		Inputs:  []Port{{"temp", value.Float}},
		Outputs: []Port{{"heat", value.Bool}, {"power", value.Float}},
		Initial: "Idle",
		States: []SMStateDef{
			{Name: "Idle", Entry: map[string]string{"heat": "false", "power": "0"}},
			{Name: "Heating", Entry: map[string]string{"heat": "true", "power": "100"}},
		},
		Transitions: []SMTransitionDef{
			{Name: "cold", From: "Idle", To: "Heating", Guard: "temp < 19"},
			{Name: "warm", From: "Heating", To: "Idle", Guard: "temp > 21"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func TestStateMachineLifecycle(t *testing.T) {
	sm := heaterSM(t)
	if sm.Current() != "Idle" || sm.Initial() != "Idle" {
		t.Fatal("initial state wrong")
	}
	out, err := sm.Step(map[string]value.Value{"temp": value.F(20)})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Current() != "Idle" || out["heat"].Bool() || sm.LastFired != nil {
		t.Errorf("no transition expected: state=%s out=%v", sm.Current(), out)
	}
	out, _ = sm.Step(map[string]value.Value{"temp": value.F(18)})
	if sm.Current() != "Heating" || !out["heat"].Bool() || out["power"].Float() != 100 {
		t.Errorf("cold transition: state=%s out=%v", sm.Current(), out)
	}
	if sm.LastFired == nil || sm.LastFired.Name != "cold" {
		t.Error("LastFired not recorded")
	}
	out, _ = sm.Step(map[string]value.Value{"temp": value.F(22)})
	if sm.Current() != "Idle" || out["heat"].Bool() {
		t.Errorf("warm transition: state=%s out=%v", sm.Current(), out)
	}
	sm.Reset()
	if sm.Current() != "Idle" || sm.LastFired != nil {
		t.Error("Reset incomplete")
	}
	if i, ok := sm.StateIndex("Heating"); !ok || i != 1 {
		t.Error("StateIndex wrong")
	}
	if len(sm.Outgoing("Idle")) != 1 || len(sm.Transitions()) != 2 || len(sm.States()) != 2 {
		t.Error("topology accessors wrong")
	}
}

func TestStateMachineTransitionActions(t *testing.T) {
	sm, err := NewStateMachineFB(SMConfig{
		Name:    "m",
		Inputs:  []Port{{"x", value.Float}},
		Outputs: []Port{{"y", value.Float}},
		States: []SMStateDef{
			{Name: "A", Entry: map[string]string{"y": "1"}},
			{Name: "B", Entry: map[string]string{"y": "2"}},
		},
		Transitions: []SMTransitionDef{
			{From: "A", To: "B", Guard: "x > 0", Actions: map[string]string{"y": "x * 10"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Implicit initial = first state.
	if sm.Initial() != "A" {
		t.Fatal("implicit initial wrong")
	}
	out, _ := sm.Step(map[string]value.Value{"x": value.F(3)})
	// Action overlays entry: y = 30, not 2.
	if out["y"].Float() != 30 {
		t.Errorf("action overlay: y = %v", out["y"])
	}
	out, _ = sm.Step(map[string]value.Value{"x": value.F(3)})
	if out["y"].Float() != 2 {
		t.Errorf("entry after settle: y = %v", out["y"])
	}
}

func TestStateMachineFirstGuardWins(t *testing.T) {
	sm, err := NewStateMachineFB(SMConfig{
		Name:    "m",
		Inputs:  []Port{{"x", value.Float}},
		Outputs: []Port{{"y", value.Int}},
		States: []SMStateDef{
			{Name: "S", Entry: map[string]string{"y": "0"}},
			{Name: "T1", Entry: map[string]string{"y": "1"}},
			{Name: "T2", Entry: map[string]string{"y": "2"}},
		},
		Transitions: []SMTransitionDef{
			{From: "S", To: "T1", Guard: "x > 0"},
			{From: "S", To: "T2", Guard: "x > 0"}, // also true, must lose
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm.Step(map[string]value.Value{"x": value.F(1)})
	if sm.Current() != "T1" {
		t.Errorf("first guard must win, got %s", sm.Current())
	}
}

func TestStateMachineErrors(t *testing.T) {
	base := SMConfig{
		Name:    "m",
		Outputs: []Port{{"y", value.Float}},
		States:  []SMStateDef{{Name: "A"}},
	}
	bad := []SMConfig{
		{},          // empty name
		{Name: "m"}, // no states
		{Name: "m", Initial: "ghost", States: base.States},          // bad initial
		{Name: "m", States: []SMStateDef{{Name: "A"}, {Name: "A"}}}, // dup state
		{Name: "m", States: base.States, Transitions: []SMTransitionDef{{From: "ghost", To: "A", Guard: "true"}}},
		{Name: "m", States: base.States, Transitions: []SMTransitionDef{{From: "A", To: "ghost", Guard: "true"}}},
		{Name: "m", States: base.States, Transitions: []SMTransitionDef{{From: "A", To: "A", Guard: "1 +"}}},
		{Name: "m", States: base.States, Transitions: []SMTransitionDef{{From: "A", To: "A", Guard: "ghost > 0"}}},
		{Name: "m", Outputs: base.Outputs, States: []SMStateDef{{Name: "A", Entry: map[string]string{"nope": "1"}}}},
		{Name: "m", Outputs: base.Outputs, States: []SMStateDef{{Name: "A", Entry: map[string]string{"y": "1 +"}}}},
		{Name: "m", Outputs: base.Outputs, States: []SMStateDef{{Name: "A", Entry: map[string]string{"y": "ghost"}}}},
		{Name: "m", Outputs: base.Outputs, States: base.States,
			Transitions: []SMTransitionDef{{From: "A", To: "A", Guard: "true", Actions: map[string]string{"nope": "1"}}}},
		{Name: "m", Outputs: base.Outputs, States: base.States,
			Transitions: []SMTransitionDef{{From: "A", To: "A", Guard: "true", Actions: map[string]string{"y": "ghost"}}}},
	}
	for i, cfg := range bad {
		if _, err := NewStateMachineFB(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestModalFB(t *testing.T) {
	lowMode := MustComponent("gain", "low", map[string]value.Value{"k": value.F(1)})
	highMode := MustComponent("gain", "high", map[string]value.Value{"k": value.F(10)})
	fallback := MustComponent("const", "off", map[string]value.Value{"value": value.F(-1)})
	// Rename gain port "out" matches modal's output; modal inputs need
	// "in" and "mode".
	m, err := NewModalFB("modal", "mode",
		[]Port{{"in", value.Float}, {"mode", value.Int}},
		[]Port{{"out", value.Float}},
		[]ModalMode{{Selector: 1, Block: lowMode}, {Selector: 2, Block: highMode}},
		fallback)
	if err != nil {
		t.Fatal(err)
	}
	step := func(mode int64, in float64) float64 {
		out, err := m.Step(map[string]value.Value{"in": value.F(in), "mode": value.I(mode)})
		if err != nil {
			t.Fatal(err)
		}
		return out["out"].Float()
	}
	if got := step(1, 5); got != 5 {
		t.Errorf("mode 1: %g", got)
	}
	if got := step(2, 5); got != 50 {
		t.Errorf("mode 2: %g", got)
	}
	if got := step(9, 5); got != -1 {
		t.Errorf("fallback: %g", got)
	}
	if m.Selector() != "mode" || len(m.Modes()) != 2 || m.Fallback() == nil {
		t.Error("modal accessors wrong")
	}
	m.Reset()
}

func TestModalFBNoFallbackZeroOutputs(t *testing.T) {
	g := MustComponent("gain", "g", nil)
	m, err := NewModalFB("m", "mode",
		[]Port{{"in", value.Float}, {"mode", value.Int}},
		[]Port{{"out", value.Float}},
		[]ModalMode{{Selector: 1, Block: g}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Step(map[string]value.Value{"in": value.F(5), "mode": value.I(7)})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"].Float() != 0 {
		t.Errorf("no-fallback output = %v", out["out"])
	}
	if _, err := m.Step(map[string]value.Value{"in": value.F(5)}); err == nil {
		t.Error("missing selector input should fail")
	}
}

func TestModalFBErrors(t *testing.T) {
	g := MustComponent("gain", "g", nil)
	ports := []Port{{"in", value.Float}, {"mode", value.Int}}
	outs := []Port{{"out", value.Float}}
	if _, err := NewModalFB("", "mode", ports, outs, []ModalMode{{1, g}}, nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewModalFB("m", "ghost", ports, outs, []ModalMode{{1, g}}, nil); err == nil {
		t.Error("bad selector should fail")
	}
	if _, err := NewModalFB("m", "mode", ports, outs, nil, nil); err == nil {
		t.Error("no modes should fail")
	}
	if _, err := NewModalFB("m", "mode", ports, outs, []ModalMode{{1, nil}}, nil); err == nil {
		t.Error("nil mode block should fail")
	}
	if _, err := NewModalFB("m", "mode", ports, outs, []ModalMode{{1, g}, {1, g}}, nil); err == nil {
		t.Error("duplicate selector should fail")
	}
	bad := MustComponent("const", "c", nil) // has output "out"… rename check needs missing port
	missing, _ := NewBasicFB("nope", nil, []Port{{"other", value.Float}}, nil, map[string]string{"other": "1"})
	_ = bad
	if _, err := NewModalFB("m", "mode", ports, outs, []ModalMode{{1, missing}}, nil); err == nil {
		t.Error("mode lacking output should fail")
	}
}

func TestRegistryComponents(t *testing.T) {
	kinds := ComponentKinds()
	if len(kinds) < 8 {
		t.Fatalf("registry too small: %v", kinds)
	}
	if _, err := NewComponent("nosuch", "x", nil); err == nil {
		t.Error("unknown kind should fail")
	}
	cases := []struct {
		kind   string
		params map[string]value.Value
		in     map[string]value.Value
		out    string
		want   float64
	}{
		{"const", map[string]value.Value{"value": value.F(7)}, nil, "out", 7},
		{"gain", map[string]value.Value{"k": value.F(3)}, map[string]value.Value{"in": value.F(2)}, "out", 6},
		{"sum", nil, map[string]value.Value{"a": value.F(2), "b": value.F(3)}, "out", 5},
		{"sub", nil, map[string]value.Value{"a": value.F(2), "b": value.F(3)}, "out", -1},
		{"mul", nil, map[string]value.Value{"a": value.F(2), "b": value.F(3)}, "out", 6},
		{"limit", map[string]value.Value{"lo": value.F(0), "hi": value.F(10)}, map[string]value.Value{"in": value.F(42)}, "out", 10},
		{"p_controller", map[string]value.Value{"kp": value.F(2)}, map[string]value.Value{"in": value.F(18), "setpoint": value.F(20)}, "out", 4},
	}
	for _, c := range cases {
		b := MustComponent(c.kind, c.kind+"_t", c.params)
		out, err := b.Step(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if math.Abs(out[c.out].Float()-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %g", c.kind, out[c.out], c.want)
		}
	}
}

func TestHysteresisComponent(t *testing.T) {
	h := MustComponent("hysteresis", "h", map[string]value.Value{"lo": value.F(19), "hi": value.F(21)})
	step := func(temp float64) bool {
		out, err := h.Step(map[string]value.Value{"in": value.F(temp)})
		if err != nil {
			t.Fatal(err)
		}
		return out["out"].Bool()
	}
	if step(20) {
		t.Error("should start off")
	}
	if !step(18) {
		t.Error("should switch on below lo")
	}
	if !step(20) {
		t.Error("should stay on inside band")
	}
	if step(22) {
		t.Error("should switch off above hi")
	}
	if step(20) {
		t.Error("should stay off inside band")
	}
}

func TestMustComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustComponent should panic on unknown kind")
		}
	}()
	MustComponent("bogus", "x", nil)
}
