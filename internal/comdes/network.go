package comdes

import (
	"fmt"

	"repro/internal/value"
)

// Connection wires a value source to a block input or network output.
// An empty FromBlock means "network input port FromPort"; an empty ToBlock
// means "network output port ToPort".
type Connection struct {
	FromBlock string
	FromPort  string
	ToBlock   string
	ToPort    string
}

// String renders the connection like "sensor.out -> ctrl.temp".
func (c Connection) String() string {
	from, to := c.FromPort, c.ToPort
	if c.FromBlock != "" {
		from = c.FromBlock + "." + c.FromPort
	}
	if c.ToBlock != "" {
		to = c.ToBlock + "." + c.ToPort
	}
	return from + " -> " + to
}

// Network is an ordered function-block network: the hierarchical dataflow
// model of a COMDES actor. Blocks execute in declaration order each
// synchronous step; a connection from a block later in the order delivers
// the producer's *previous-cycle* value (unit-delay feedback), the
// conventional semantics for clocked dataflow loops.
type Network struct {
	name    string
	inputs  []Port
	outputs []Port
	blocks  []Block
	byName  map[string]Block
	conns   []Connection

	// prev holds last-cycle outputs per block for feedback edges.
	prev map[string]map[string]value.Value
}

// NewNetwork creates an empty network with the given interface ports.
func NewNetwork(name string, inputs, outputs []Port) *Network {
	return &Network{
		name: name, inputs: inputs, outputs: outputs,
		byName: map[string]Block{}, prev: map[string]map[string]value.Value{},
	}
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// Inputs returns the network's input ports.
func (n *Network) Inputs() []Port { return n.inputs }

// Outputs returns the network's output ports.
func (n *Network) Outputs() []Port { return n.outputs }

// Blocks returns the blocks in execution order.
func (n *Network) Blocks() []Block { return n.blocks }

// Block returns a block by name, or nil.
func (n *Network) Block(name string) Block { return n.byName[name] }

// Connections returns the wiring list.
func (n *Network) Connections() []Connection { return n.conns }

// Add appends a block to the execution order.
func (n *Network) Add(b Block) error {
	if _, dup := n.byName[b.Name()]; dup {
		return fmt.Errorf("comdes: %s: duplicate block %q", n.name, b.Name())
	}
	n.blocks = append(n.blocks, b)
	n.byName[b.Name()] = b
	return nil
}

// MustAdd is Add that panics; for fixtures.
func (n *Network) MustAdd(b Block) *Network {
	if err := n.Add(b); err != nil {
		panic(err)
	}
	return n
}

// Connect wires "fromBlock.fromPort" to "toBlock.toPort". Use "" as block
// name to reference the network's own ports.
func (n *Network) Connect(fromBlock, fromPort, toBlock, toPort string) error {
	c := Connection{FromBlock: fromBlock, FromPort: fromPort, ToBlock: toBlock, ToPort: toPort}
	srcKind, err := n.sourceKind(c)
	if err != nil {
		return err
	}
	dstKind, err := n.destKind(c)
	if err != nil {
		return err
	}
	// Numeric widening is allowed (int -> float); other mismatches are
	// design errors caught at wiring time.
	if srcKind != dstKind && !(srcKind == value.Int && dstKind == value.Float) &&
		!(srcKind == value.Float && dstKind == value.Int) &&
		!(srcKind == value.Bool && dstKind == value.Int) {
		return fmt.Errorf("comdes: %s: %s: kind mismatch %v -> %v", n.name, c, srcKind, dstKind)
	}
	// A destination may be driven only once.
	for _, ex := range n.conns {
		if ex.ToBlock == c.ToBlock && ex.ToPort == c.ToPort {
			return fmt.Errorf("comdes: %s: %s already driven by %s", n.name, c, ex)
		}
	}
	n.conns = append(n.conns, c)
	return nil
}

// MustConnect is Connect that panics; for fixtures.
func (n *Network) MustConnect(fromBlock, fromPort, toBlock, toPort string) *Network {
	if err := n.Connect(fromBlock, fromPort, toBlock, toPort); err != nil {
		panic(err)
	}
	return n
}

func (n *Network) sourceKind(c Connection) (value.Kind, error) {
	if c.FromBlock == "" {
		for _, p := range n.inputs {
			if p.Name == c.FromPort {
				return p.Kind, nil
			}
		}
		return 0, fmt.Errorf("comdes: %s: unknown network input %q", n.name, c.FromPort)
	}
	b := n.byName[c.FromBlock]
	if b == nil {
		return 0, fmt.Errorf("comdes: %s: unknown source block %q", n.name, c.FromBlock)
	}
	for _, p := range b.Outputs() {
		if p.Name == c.FromPort {
			return p.Kind, nil
		}
	}
	return 0, fmt.Errorf("comdes: %s: block %s has no output %q", n.name, c.FromBlock, c.FromPort)
}

func (n *Network) destKind(c Connection) (value.Kind, error) {
	if c.ToBlock == "" {
		for _, p := range n.outputs {
			if p.Name == c.ToPort {
				return p.Kind, nil
			}
		}
		return 0, fmt.Errorf("comdes: %s: unknown network output %q", n.name, c.ToPort)
	}
	b := n.byName[c.ToBlock]
	if b == nil {
		return 0, fmt.Errorf("comdes: %s: unknown destination block %q", n.name, c.ToBlock)
	}
	for _, p := range b.Inputs() {
		if p.Name == c.ToPort {
			return p.Kind, nil
		}
	}
	return 0, fmt.Errorf("comdes: %s: block %s has no input %q", n.name, c.ToBlock, c.ToPort)
}

// Validate checks that every block input and every network output is
// driven by exactly one connection.
func (n *Network) Validate() error {
	driven := map[string]bool{}
	for _, c := range n.conns {
		driven[c.ToBlock+"."+c.ToPort] = true
	}
	for _, b := range n.blocks {
		for _, p := range b.Inputs() {
			if !driven[b.Name()+"."+p.Name] {
				return fmt.Errorf("comdes: %s: input %s.%s not driven", n.name, b.Name(), p.Name)
			}
		}
	}
	for _, p := range n.outputs {
		if !driven["."+p.Name] {
			return fmt.Errorf("comdes: %s: network output %q not driven", n.name, p.Name)
		}
	}
	return nil
}

// Reset restores all block state and clears feedback history.
func (n *Network) Reset() {
	for _, b := range n.blocks {
		b.Reset()
	}
	n.prev = map[string]map[string]value.Value{}
}

// evalOrder maps block name -> position for feedback resolution.
func (n *Network) evalPos(name string) int {
	for i, b := range n.blocks {
		if b.Name() == name {
			return i
		}
	}
	return -1
}

// Step performs one synchronous network evaluation and returns the
// network's output values.
func (n *Network) Step(in map[string]value.Value) (map[string]value.Value, error) {
	produced := map[string]map[string]value.Value{}
	resolve := func(c Connection, consumerPos int) (value.Value, error) {
		if c.FromBlock == "" {
			v, ok := in[c.FromPort]
			if !ok {
				return value.Value{}, fmt.Errorf("comdes: %s: missing network input %q", n.name, c.FromPort)
			}
			return v, nil
		}
		if cur, ok := produced[c.FromBlock]; ok {
			return cur[c.FromPort], nil
		}
		// Producer runs later this cycle: feedback edge, use last cycle.
		if last, ok := n.prev[c.FromBlock]; ok {
			return last[c.FromPort], nil
		}
		// First cycle: zero of the producer's port kind.
		k, err := n.sourceKind(c)
		if err != nil {
			return value.Value{}, err
		}
		return value.Zero(k), nil
	}

	for pos, b := range n.blocks {
		bin := map[string]value.Value{}
		for _, c := range n.conns {
			if c.ToBlock != b.Name() {
				continue
			}
			v, err := resolve(c, pos)
			if err != nil {
				return nil, err
			}
			dk, _ := n.destKind(c)
			bin[c.ToPort] = mustConvert(v, dk)
		}
		bout, err := b.Step(bin)
		if err != nil {
			return nil, err
		}
		produced[b.Name()] = bout
	}

	out := map[string]value.Value{}
	for _, c := range n.conns {
		if c.ToBlock != "" {
			continue
		}
		v, err := resolve(c, len(n.blocks))
		if err != nil {
			return nil, err
		}
		out[c.ToPort] = mustConvert(v, portKind(n.outputs, c.ToPort))
	}
	n.prev = produced
	return out, nil
}

// ---- Composite function block ----

// CompositeFB wraps a Network as a reusable Block (the COMDES composite
// function block).
type CompositeFB struct {
	net *Network
}

// NewCompositeFB wraps net; the network must validate.
func NewCompositeFB(net *Network) (*CompositeFB, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return &CompositeFB{net: net}, nil
}

// Name implements Block.
func (c *CompositeFB) Name() string { return c.net.Name() }

// Inputs implements Block.
func (c *CompositeFB) Inputs() []Port { return c.net.Inputs() }

// Outputs implements Block.
func (c *CompositeFB) Outputs() []Port { return c.net.Outputs() }

// Network exposes the inner network (for codegen and abstraction).
func (c *CompositeFB) Network() *Network { return c.net }

// Reset implements Block.
func (c *CompositeFB) Reset() { c.net.Reset() }

// Step implements Block.
func (c *CompositeFB) Step(in map[string]value.Value) (map[string]value.Value, error) {
	return c.net.Step(in)
}
