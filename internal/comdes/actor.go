package comdes

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// TaskSpec carries the timing attributes of an actor's task under the
// Distributed Timed Multitasking model: the task is released every Period
// (plus Offset), latches its input signals at release, and latches its
// output signals exactly at release+Deadline — eliminating I/O jitter.
type TaskSpec struct {
	PeriodNs   uint64
	OffsetNs   uint64
	DeadlineNs uint64
	// Priority is the task's fixed scheduling priority under the target's
	// preemptive policy (dtm.FixedPriority): higher values preempt lower
	// ones, equal values run FIFO by release order. The cooperative policy
	// ignores it.
	Priority int
}

// Validate checks the timing attributes.
func (t TaskSpec) Validate() error {
	if t.PeriodNs == 0 {
		return fmt.Errorf("comdes: task period must be positive")
	}
	if t.DeadlineNs == 0 || t.DeadlineNs > t.PeriodNs {
		return fmt.Errorf("comdes: deadline must be in (0, period]")
	}
	return nil
}

// Actor is a distributed embedded actor: a function-block network plus the
// task that executes it, communicating with other actors through labelled
// signals.
type Actor struct {
	ActorName string
	Net       *Network
	Task      TaskSpec
}

// NewActor wraps a network and task spec; the actor's signal interface is
// the network's interface.
func NewActor(name string, net *Network, task TaskSpec) (*Actor, error) {
	if name == "" {
		return nil, fmt.Errorf("comdes: actor with empty name")
	}
	if err := task.Validate(); err != nil {
		return nil, fmt.Errorf("comdes: actor %s: %w", name, err)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("comdes: actor %s: %w", name, err)
	}
	return &Actor{ActorName: name, Net: net, Task: task}, nil
}

// Name returns the actor name.
func (a *Actor) Name() string { return a.ActorName }

// Inputs returns the actor's input signal ports.
func (a *Actor) Inputs() []Port { return a.Net.Inputs() }

// Outputs returns the actor's output signal ports.
func (a *Actor) Outputs() []Port { return a.Net.Outputs() }

// Binding routes an actor output to an actor input as a labelled signal
// (state-message communication). Node names allow distributed placement;
// a binding between actors on different nodes crosses the network.
type Binding struct {
	Signal    string // label of the state message
	FromActor string
	FromPort  string
	ToActor   string
	ToPort    string
}

// System is a complete COMDES application: a set of actors, their signal
// bindings, and optional node placements for distributed execution.
type System struct {
	SysName  string
	Actors   []*Actor
	Bindings []Binding
	// Placement maps actor name -> node name; absent means node "main".
	Placement map[string]string

	byName map[string]*Actor
}

// NewSystem creates an empty system.
func NewSystem(name string) *System {
	return &System{SysName: name, Placement: map[string]string{}, byName: map[string]*Actor{}}
}

// Name returns the system name.
func (s *System) Name() string { return s.SysName }

// AddActor registers an actor.
func (s *System) AddActor(a *Actor) error {
	if _, dup := s.byName[a.Name()]; dup {
		return fmt.Errorf("comdes: duplicate actor %q", a.Name())
	}
	s.Actors = append(s.Actors, a)
	s.byName[a.Name()] = a
	return nil
}

// MustAddActor is AddActor that panics; for fixtures.
func (s *System) MustAddActor(a *Actor) *System {
	if err := s.AddActor(a); err != nil {
		panic(err)
	}
	return s
}

// Actor returns the named actor, or nil.
func (s *System) Actor(name string) *Actor { return s.byName[name] }

// Place assigns an actor to a node.
func (s *System) Place(actor, node string) error {
	if s.byName[actor] == nil {
		return fmt.Errorf("comdes: unknown actor %q", actor)
	}
	s.Placement[actor] = node
	return nil
}

// NodeOf returns the node an actor runs on ("main" by default).
func (s *System) NodeOf(actor string) string {
	if n, ok := s.Placement[actor]; ok {
		return n
	}
	return "main"
}

// Nodes returns the sorted set of nodes in use.
func (s *System) Nodes() []string {
	set := map[string]bool{}
	for _, a := range s.Actors {
		set[s.NodeOf(a.Name())] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Bind routes fromActor.fromPort to toActor.toPort under the given signal
// label.
func (s *System) Bind(signal, fromActor, fromPort, toActor, toPort string) error {
	fa := s.byName[fromActor]
	ta := s.byName[toActor]
	if fa == nil {
		return fmt.Errorf("comdes: unknown source actor %q", fromActor)
	}
	if ta == nil {
		return fmt.Errorf("comdes: unknown destination actor %q", toActor)
	}
	if !hasPort(fa.Outputs(), fromPort) {
		return fmt.Errorf("comdes: actor %s has no output %q", fromActor, fromPort)
	}
	if !hasPort(ta.Inputs(), toPort) {
		return fmt.Errorf("comdes: actor %s has no input %q", toActor, toPort)
	}
	if signal == "" {
		signal = fromActor + "." + fromPort
	}
	for _, b := range s.Bindings {
		if b.ToActor == toActor && b.ToPort == toPort {
			return fmt.Errorf("comdes: input %s.%s already bound", toActor, toPort)
		}
	}
	s.Bindings = append(s.Bindings, Binding{Signal: signal, FromActor: fromActor, FromPort: fromPort, ToActor: toActor, ToPort: toPort})
	return nil
}

// MustBind is Bind that panics; for fixtures.
func (s *System) MustBind(signal, fromActor, fromPort, toActor, toPort string) *System {
	if err := s.Bind(signal, fromActor, fromPort, toActor, toPort); err != nil {
		panic(err)
	}
	return s
}

// Validate checks the whole system: actors valid, bindings well-typed.
func (s *System) Validate() error {
	if len(s.Actors) == 0 {
		return fmt.Errorf("comdes: system %s has no actors", s.SysName)
	}
	for _, a := range s.Actors {
		if err := a.Net.Validate(); err != nil {
			return err
		}
		if err := a.Task.Validate(); err != nil {
			return fmt.Errorf("comdes: actor %s: %w", a.Name(), err)
		}
	}
	return nil
}

// Interpreter executes a System with the reference synchronous semantics:
// all actors step on their task periods in virtual time, signals propagate
// through a global state-message board at deadline instants. It is the
// model-level oracle the debugger compares target execution against
// (experiment E9's implementation-error detection).
type Interpreter struct {
	sys   *System
	board map[string]value.Value // signal label -> latest value
	// Environment inputs: unbound actor inputs are read from here.
	Env map[string]value.Value
}

// NewInterpreter resets all actors and builds an interpreter.
func NewInterpreter(sys *System) *Interpreter {
	for _, a := range sys.Actors {
		a.Net.Reset()
	}
	it := &Interpreter{sys: sys, board: map[string]value.Value{}, Env: map[string]value.Value{}}
	return it
}

// Board exposes the current signal values (read-only by convention).
func (it *Interpreter) Board() map[string]value.Value { return it.board }

// StepActor executes one synchronous step of one actor: latch inputs from
// board/env, step the network, publish outputs to the board.
func (it *Interpreter) StepActor(name string) (map[string]value.Value, error) {
	a := it.sys.Actor(name)
	if a == nil {
		return nil, fmt.Errorf("comdes: unknown actor %q", name)
	}
	in := map[string]value.Value{}
	for _, p := range a.Inputs() {
		bound := false
		for _, b := range it.sys.Bindings {
			if b.ToActor == name && b.ToPort == p.Name {
				if v, ok := it.board[b.Signal]; ok {
					in[p.Name] = mustConvert(v, p.Kind)
				} else {
					in[p.Name] = value.Zero(p.Kind)
				}
				bound = true
				break
			}
		}
		if !bound {
			if v, ok := it.Env[name+"."+p.Name]; ok {
				in[p.Name] = mustConvert(v, p.Kind)
			} else if v, ok := it.Env[p.Name]; ok {
				in[p.Name] = mustConvert(v, p.Kind)
			} else {
				in[p.Name] = value.Zero(p.Kind)
			}
		}
	}
	out, err := a.Net.Step(in)
	if err != nil {
		return nil, err
	}
	for _, b := range it.sys.Bindings {
		if b.FromActor == name {
			if v, ok := out[b.FromPort]; ok {
				it.board[b.Signal] = v
			}
		}
	}
	return out, nil
}
