package comdes

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// pipelineNet builds: in -> gain(k=2) -> limit(0..100) -> out
func pipelineNet(t testing.TB) *Network {
	net := NewNetwork("pipe",
		[]Port{{"in", value.Float}},
		[]Port{{"out", value.Float}})
	net.MustAdd(MustComponent("gain", "g", map[string]value.Value{"k": value.F(2)}))
	net.MustAdd(MustComponent("limit", "lim", map[string]value.Value{"lo": value.F(0), "hi": value.F(100)}))
	net.MustConnect("", "in", "g", "in").
		MustConnect("g", "out", "lim", "in").
		MustConnect("lim", "out", "", "out")
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkPipeline(t *testing.T) {
	net := pipelineNet(t)
	out, err := net.Step(map[string]value.Value{"in": value.F(30)})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"].Float() != 60 {
		t.Errorf("30*2 = %v", out["out"])
	}
	out, _ = net.Step(map[string]value.Value{"in": value.F(80)})
	if out["out"].Float() != 100 {
		t.Errorf("limit failed: %v", out["out"])
	}
	if net.Block("g") == nil || net.Block("zz") != nil {
		t.Error("Block lookup broken")
	}
	if len(net.Blocks()) != 2 || len(net.Connections()) != 3 {
		t.Error("topology accessors wrong")
	}
}

func TestNetworkConnectionString(t *testing.T) {
	c := Connection{FromBlock: "a", FromPort: "x", ToBlock: "b", ToPort: "y"}
	if c.String() != "a.x -> b.y" {
		t.Errorf("String = %q", c.String())
	}
	c2 := Connection{FromPort: "in", ToPort: "out"}
	if c2.String() != "in -> out" {
		t.Errorf("String = %q", c2.String())
	}
}

func TestNetworkErrors(t *testing.T) {
	net := NewNetwork("n", []Port{{"in", value.Float}}, []Port{{"out", value.Float}})
	g := MustComponent("gain", "g", nil)
	if err := net.Add(g); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(MustComponent("gain", "g", nil)); err == nil {
		t.Error("duplicate block should fail")
	}
	if err := net.Connect("", "ghost", "g", "in"); err == nil {
		t.Error("unknown network input should fail")
	}
	if err := net.Connect("ghost", "out", "g", "in"); err == nil {
		t.Error("unknown source block should fail")
	}
	if err := net.Connect("g", "ghost", "", "out"); err == nil {
		t.Error("unknown source port should fail")
	}
	if err := net.Connect("g", "out", "ghost", "in"); err == nil {
		t.Error("unknown dest block should fail")
	}
	if err := net.Connect("g", "out", "g", "ghost"); err == nil {
		t.Error("unknown dest port should fail")
	}
	if err := net.Connect("g", "out", "", "ghost"); err == nil {
		t.Error("unknown network output should fail")
	}
	if err := net.Connect("", "in", "g", "in"); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect("g", "out", "g", "in"); err == nil {
		t.Error("double-driven input should fail")
	}
	// Kind mismatch: bool -> float rejected.
	cmp := MustComponent("compare", "c", nil)
	net.MustAdd(cmp)
	if err := net.Connect("c", "out", "", "out"); err == nil {
		t.Error("bool->float should fail")
	}
	// Undriven input fails validation.
	if err := net.Validate(); err == nil || !strings.Contains(err.Error(), "not driven") {
		t.Errorf("Validate = %v", err)
	}
}

func TestNetworkFeedbackUnitDelay(t *testing.T) {
	// counter: sum(a=1, b=feedback of own output). Output sequence 1,2,3…
	net := NewNetwork("counter", nil, []Port{{"count", value.Float}})
	net.MustAdd(MustComponent("const", "one", map[string]value.Value{"value": value.F(1)}))
	net.MustAdd(MustComponent("sum", "acc", nil))
	net.MustConnect("one", "out", "acc", "a").
		MustConnect("acc", "out", "acc", "b"). // feedback: previous cycle
		MustConnect("acc", "out", "", "count")
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5}
	for i, w := range want {
		out, err := net.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out["count"].Float() != w {
			t.Errorf("cycle %d: %v, want %g", i, out["count"], w)
		}
	}
	net.Reset()
	out, _ := net.Step(nil)
	if out["count"].Float() != 1 {
		t.Errorf("after Reset: %v, want 1", out["count"])
	}
}

func TestNetworkMissingInput(t *testing.T) {
	net := pipelineNet(t)
	if _, err := net.Step(map[string]value.Value{}); err == nil {
		t.Error("missing network input should fail")
	}
}

func TestCompositeFB(t *testing.T) {
	inner := pipelineNet(t)
	comp, err := NewCompositeFB(inner)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Name() != "pipe" || len(comp.Inputs()) != 1 || len(comp.Outputs()) != 1 {
		t.Error("composite interface wrong")
	}
	if comp.Network() != inner {
		t.Error("Network accessor wrong")
	}
	out, err := comp.Step(map[string]value.Value{"in": value.F(10)})
	if err != nil {
		t.Fatal(err)
	}
	if out["out"].Float() != 20 {
		t.Errorf("composite step = %v", out["out"])
	}
	comp.Reset()

	// Composite of an invalid network must fail.
	badNet := NewNetwork("bad", nil, []Port{{"o", value.Float}})
	if _, err := NewCompositeFB(badNet); err == nil {
		t.Error("invalid inner network should fail")
	}
}

func TestNestedComposite(t *testing.T) {
	inner := pipelineNet(t)
	comp, _ := NewCompositeFB(inner)
	outer := NewNetwork("outer", []Port{{"x", value.Float}}, []Port{{"y", value.Float}})
	outer.MustAdd(comp)
	outer.MustAdd(MustComponent("gain", "post", map[string]value.Value{"k": value.F(10)}))
	outer.MustConnect("", "x", "pipe", "in").
		MustConnect("pipe", "out", "post", "in").
		MustConnect("post", "out", "", "y")
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := outer.Step(map[string]value.Value{"x": value.F(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].Float() != 60 { // 3*2=6, *10=60
		t.Errorf("nested = %v", out["y"])
	}
}
