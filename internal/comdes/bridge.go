package comdes

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/metamodel"
	"repro/internal/value"
)

// This file bridges COMDES to the reflective metamodel substrate. The
// paper's GMDF takes "any EMF-based user meta-model as input"; concretely
// its prototype consumes COMDES design models. Metamodel() publishes the
// COMDES language as a metamodel.Metamodel, ToModel() reflects a System
// into an instance model the abstraction engine can walk, and FromModel()
// reconstructs an executable System from such a model (the path used when
// models are loaded from XML files by the tools).
//
// Object identifiers follow fixed conventions so that runtime events can
// be correlated with model elements (and hence with GDM elements):
//
//	system            "system:<name>"
//	actor             "actor:<actor>"
//	port              "port:net.<path>.<in|out>.<port>"
//	block             "block:<actor>.<block>" (nested: dotted path)
//	state             "state:<actor>.<block>.<state>"
//	transition        "trans:<actor>.<block>.<transition>"
//	connection        "conn:<path>.<n>"
//	binding           "bind:<signal>"

// Element id constructors (shared with the debugger's auto-binder).

// SystemID returns the model id of the system object.
func SystemID(sys string) string { return "system:" + sys }

// ActorID returns the model id of an actor object.
func ActorID(actor string) string { return "actor:" + actor }

// PortID returns the model id of an actor-level port object; dir is "in"
// or "out".
func PortID(actor, dir, port string) string {
	return "port:net." + actor + "." + dir + "." + port
}

// BlockID returns the model id of a block given its dotted path
// ("actor.block" or deeper for composites).
func BlockID(path string) string { return "block:" + path }

// StateID returns the model id of a state of the machine at path.
func StateID(machinePath, state string) string { return "state:" + machinePath + "." + state }

// TransitionID returns the model id of a transition of the machine at path.
func TransitionID(machinePath, name string) string { return "trans:" + machinePath + "." + name }

// Metamodel returns the COMDES language metamodel (fresh instance).
func Metamodel() *metamodel.Metamodel {
	m := metamodel.NewMetamodel("comdes", "urn:comdes:2.0")
	if _, err := m.AddEnum("SignalKind", "float", "int", "bool"); err != nil {
		panic(err)
	}
	m.MustClass("NamedElement", true, "").Attr("name", value.String)
	m.MustClass("SignalPort", false, "NamedElement").
		AttrEnum("kind", "SignalKind").
		Attr("direction", value.String)
	m.MustClass("Param", false, "NamedElement").
		Attr("value", value.String).
		AttrEnum("kind", "SignalKind")
	m.MustClass("Assign", false, "NamedElement").Attr("expr", value.String)
	m.MustClass("Formula", false, "NamedElement").Attr("expr", value.String)

	m.MustClass("FunctionBlock", true, "NamedElement").
		Contain("inputs", "SignalPort").
		Contain("outputs", "SignalPort")
	m.MustClass("BasicFB", false, "FunctionBlock").
		Attr("component", value.String).
		Contain("params", "Param").
		Contain("formulas", "Formula")
	m.MustClass("State", false, "NamedElement").
		Contain("entry", "Assign").
		Attr("initial", value.Bool)
	m.MustClass("Transition", false, "NamedElement").
		Attr("guard", value.String).
		Contain("actions", "Assign")
	// from/to resolved after State exists.
	m.Class("Transition").RefTo("from", "State", 1, 1).RefTo("to", "State", 1, 1)
	m.MustClass("StateMachineFB", false, "FunctionBlock").
		Contain("states", "State").
		Contain("transitions", "Transition")
	m.MustClass("Connection", false, "").
		Attr("from", value.String).
		Attr("to", value.String)
	m.MustClass("Network", false, "NamedElement").
		Contain("inputs", "SignalPort").
		Contain("outputs", "SignalPort").
		Contain("blocks", "FunctionBlock").
		Contain("connections", "Connection")
	m.MustClass("CompositeFB", false, "FunctionBlock").
		Contain("network", "Network")
	m.MustClass("Mode", false, "").
		Attr("selector", value.Int).
		Attr("fallback", value.Bool).
		Contain("block", "FunctionBlock")
	m.MustClass("ModalFB", false, "FunctionBlock").
		Attr("selectorInput", value.String).
		Contain("modes", "Mode")
	m.MustClass("Actor", false, "NamedElement").
		Attr("periodNs", value.Int).
		Attr("offsetNs", value.Int).
		Attr("deadlineNs", value.Int).
		Attr("node", value.String).
		Contain("network", "Network")
	m.MustClass("Binding", false, "NamedElement").
		Attr("fromActor", value.String).
		Attr("fromPort", value.String).
		Attr("toActor", value.String).
		Attr("toPort", value.String)
	m.MustClass("System", false, "NamedElement").
		Contain("actors", "Actor").
		Contain("bindings", "Binding")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func kindName(k value.Kind) string {
	switch k {
	case value.Int:
		return "int"
	case value.Bool:
		return "bool"
	default:
		return "float"
	}
}

// ToModel reflects sys into an instance model over meta (which must be the
// COMDES metamodel).
func ToModel(sys *System, meta *metamodel.Metamodel) (*metamodel.Model, error) {
	mod := metamodel.NewModel(meta)
	root, err := mod.NewObjectID("System", SystemID(sys.Name()))
	if err != nil {
		return nil, err
	}
	if err := root.Set("name", value.S(sys.Name())); err != nil {
		return nil, err
	}
	for _, a := range sys.Actors {
		ao, err := mod.NewObjectID("Actor", ActorID(a.Name()))
		if err != nil {
			return nil, err
		}
		ao.MustSet("name", value.S(a.Name())).
			MustSet("periodNs", value.I(int64(a.Task.PeriodNs))).
			MustSet("offsetNs", value.I(int64(a.Task.OffsetNs))).
			MustSet("deadlineNs", value.I(int64(a.Task.DeadlineNs))).
			MustSet("node", value.S(sys.NodeOf(a.Name())))
		no, err := networkToModel(mod, a.Net, a.Name())
		if err != nil {
			return nil, err
		}
		ao.MustAppend("network", no)
		root.MustAppend("actors", ao)
	}
	for _, b := range sys.Bindings {
		bo, err := mod.NewObjectID("Binding", "bind:"+b.Signal)
		if err != nil {
			return nil, err
		}
		bo.MustSet("name", value.S(b.Signal)).
			MustSet("fromActor", value.S(b.FromActor)).
			MustSet("fromPort", value.S(b.FromPort)).
			MustSet("toActor", value.S(b.ToActor)).
			MustSet("toPort", value.S(b.ToPort))
		root.MustAppend("bindings", bo)
	}
	if err := mod.AddRoot(root); err != nil {
		return nil, err
	}
	return mod, mod.Validate()
}

func portsToModel(mod *metamodel.Model, owner *metamodel.Object, ref, prefix, direction string, ports []Port) error {
	for _, p := range ports {
		po, err := mod.NewObjectID("SignalPort", "port:"+prefix+"."+direction+"."+p.Name)
		if err != nil {
			return err
		}
		po.MustSet("name", value.S(p.Name)).
			MustSet("kind", value.S(kindName(p.Kind))).
			MustSet("direction", value.S(direction))
		owner.MustAppend(ref, po)
	}
	return nil
}

func networkToModel(mod *metamodel.Model, net *Network, path string) (*metamodel.Object, error) {
	no, err := mod.NewObjectID("Network", "net:"+path)
	if err != nil {
		return nil, err
	}
	no.MustSet("name", value.S(net.Name()))
	if err := portsToModel(mod, no, "inputs", "net."+path, "in", net.Inputs()); err != nil {
		return nil, err
	}
	if err := portsToModel(mod, no, "outputs", "net."+path, "out", net.Outputs()); err != nil {
		return nil, err
	}
	for _, b := range net.Blocks() {
		bo, err := blockToModel(mod, b, path+"."+b.Name())
		if err != nil {
			return nil, err
		}
		no.MustAppend("blocks", bo)
	}
	for i, c := range net.Connections() {
		co, err := mod.NewObjectID("Connection", fmt.Sprintf("conn:%s.%d", path, i))
		if err != nil {
			return nil, err
		}
		co.MustSet("from", value.S(joinEndpoint(c.FromBlock, c.FromPort))).
			MustSet("to", value.S(joinEndpoint(c.ToBlock, c.ToPort)))
		no.MustAppend("connections", co)
	}
	return no, nil
}

func joinEndpoint(block, port string) string {
	if block == "" {
		return port
	}
	return block + "." + port
}

func splitEndpoint(s string) (block, port string) {
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}

func blockToModel(mod *metamodel.Model, b Block, path string) (*metamodel.Object, error) {
	switch fb := b.(type) {
	case *BasicFB:
		bo, err := mod.NewObjectID("BasicFB", BlockID(path))
		if err != nil {
			return nil, err
		}
		bo.MustSet("name", value.S(fb.Name()))
		if err := portsToModel(mod, bo, "inputs", path, "in", fb.Inputs()); err != nil {
			return nil, err
		}
		if err := portsToModel(mod, bo, "outputs", path, "out", fb.Outputs()); err != nil {
			return nil, err
		}
		for name, v := range fb.Params() {
			po, err := mod.NewObjectID("Param", "param:"+path+"."+name)
			if err != nil {
				return nil, err
			}
			po.MustSet("name", value.S(name)).
				MustSet("value", value.S(v.String())).
				MustSet("kind", value.S(kindName(v.Kind())))
			bo.MustAppend("params", po)
		}
		for _, out := range fb.Outputs() {
			fo, err := mod.NewObjectID("Formula", "formula:"+path+"."+out.Name)
			if err != nil {
				return nil, err
			}
			fo.MustSet("name", value.S(out.Name)).
				MustSet("expr", value.S(fb.Formula(out.Name).String()))
			bo.MustAppend("formulas", fo)
		}
		return bo, nil
	case *StateMachineFB:
		bo, err := mod.NewObjectID("StateMachineFB", BlockID(path))
		if err != nil {
			return nil, err
		}
		bo.MustSet("name", value.S(fb.Name()))
		if err := portsToModel(mod, bo, "inputs", path, "in", fb.Inputs()); err != nil {
			return nil, err
		}
		if err := portsToModel(mod, bo, "outputs", path, "out", fb.Outputs()); err != nil {
			return nil, err
		}
		for _, st := range fb.States() {
			so, err := mod.NewObjectID("State", StateID(path, st.Name))
			if err != nil {
				return nil, err
			}
			so.MustSet("name", value.S(st.Name)).
				MustSet("initial", value.B(st.Name == fb.Initial()))
			if err := assignsToModel(mod, so, "entry", path+"."+st.Name, st.Entry); err != nil {
				return nil, err
			}
			bo.MustAppend("states", so)
		}
		for _, tr := range fb.Transitions() {
			to, err := mod.NewObjectID("Transition", TransitionID(path, tr.Name))
			if err != nil {
				return nil, err
			}
			to.MustSet("name", value.S(tr.Name)).
				MustSet("guard", value.S(tr.Guard.String()))
			to.MustAppend("from", mod.Lookup(StateID(path, tr.From)))
			to.MustAppend("to", mod.Lookup(StateID(path, tr.To)))
			if err := assignsToModel(mod, to, "actions", path+"."+tr.Name, tr.Actions); err != nil {
				return nil, err
			}
			bo.MustAppend("transitions", to)
		}
		return bo, nil
	case *CompositeFB:
		bo, err := mod.NewObjectID("CompositeFB", BlockID(path))
		if err != nil {
			return nil, err
		}
		bo.MustSet("name", value.S(fb.Name()))
		if err := portsToModel(mod, bo, "inputs", path, "in", fb.Inputs()); err != nil {
			return nil, err
		}
		if err := portsToModel(mod, bo, "outputs", path, "out", fb.Outputs()); err != nil {
			return nil, err
		}
		// Inner blocks keep the composite's dotted path so their ids match
		// the code generator's symbol paths (the debugger correlates the
		// two).
		no, err := networkToModel(mod, fb.Network(), path)
		if err != nil {
			return nil, err
		}
		bo.MustAppend("network", no)
		return bo, nil
	case *ModalFB:
		bo, err := mod.NewObjectID("ModalFB", BlockID(path))
		if err != nil {
			return nil, err
		}
		bo.MustSet("name", value.S(fb.Name())).
			MustSet("selectorInput", value.S(fb.Selector()))
		if err := portsToModel(mod, bo, "inputs", path, "in", fb.Inputs()); err != nil {
			return nil, err
		}
		if err := portsToModel(mod, bo, "outputs", path, "out", fb.Outputs()); err != nil {
			return nil, err
		}
		for _, md := range fb.Modes() {
			mo, err := mod.NewObjectID("Mode", fmt.Sprintf("mode:%s.%d", path, md.Selector))
			if err != nil {
				return nil, err
			}
			mo.MustSet("selector", value.I(md.Selector)).MustSet("fallback", value.B(false))
			inner, err := blockToModel(mod, md.Block, fmt.Sprintf("%s.m%d.%s", path, md.Selector, md.Block.Name()))
			if err != nil {
				return nil, err
			}
			mo.MustAppend("block", inner)
			bo.MustAppend("modes", mo)
		}
		if fb.Fallback() != nil {
			mo, err := mod.NewObjectID("Mode", "mode:"+path+".fallback")
			if err != nil {
				return nil, err
			}
			mo.MustSet("selector", value.I(0)).MustSet("fallback", value.B(true))
			inner, err := blockToModel(mod, fb.Fallback(), path+".fallback."+fb.Fallback().Name())
			if err != nil {
				return nil, err
			}
			mo.MustAppend("block", inner)
			bo.MustAppend("modes", mo)
		}
		return bo, nil
	}
	return nil, fmt.Errorf("comdes: unreflectable block type %T", b)
}

func assignsToModel(mod *metamodel.Model, owner *metamodel.Object, ref, prefix string, assigns map[string]expr.Node) error {
	for _, name := range sortedKeys(assigns) {
		ao, err := mod.NewObjectID("Assign", "assign:"+prefix+"."+ref+"."+name)
		if err != nil {
			return err
		}
		ao.MustSet("name", value.S(name)).MustSet("expr", value.S(assigns[name].String()))
		owner.MustAppend(ref, ao)
	}
	return nil
}

func sortedKeys(m map[string]expr.Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FromModel reconstructs an executable System from a reflected model.
func FromModel(mod *metamodel.Model) (*System, error) {
	roots := mod.Roots()
	if len(roots) != 1 || !roots[0].Class().IsKindOf("System") {
		return nil, fmt.Errorf("comdes: model must have a single System root")
	}
	root := roots[0]
	sys := NewSystem(root.GetString("name"))
	for _, ao := range root.Refs("actors") {
		period, _ := ao.Get("periodNs")
		offset, _ := ao.Get("offsetNs")
		deadline, _ := ao.Get("deadlineNs")
		nets := ao.Refs("network")
		if len(nets) != 1 {
			return nil, fmt.Errorf("comdes: actor %s must have one network", ao.GetString("name"))
		}
		net, err := networkFromModel(nets[0])
		if err != nil {
			return nil, err
		}
		a, err := NewActor(ao.GetString("name"), net, TaskSpec{
			PeriodNs: uint64(period.Int()), OffsetNs: uint64(offset.Int()), DeadlineNs: uint64(deadline.Int()),
		})
		if err != nil {
			return nil, err
		}
		if err := sys.AddActor(a); err != nil {
			return nil, err
		}
		if node := ao.GetString("node"); node != "" && node != "main" {
			if err := sys.Place(a.Name(), node); err != nil {
				return nil, err
			}
		}
	}
	for _, bo := range root.Refs("bindings") {
		if err := sys.Bind(bo.GetString("name"),
			bo.GetString("fromActor"), bo.GetString("fromPort"),
			bo.GetString("toActor"), bo.GetString("toPort")); err != nil {
			return nil, err
		}
	}
	return sys, sys.Validate()
}

func portsFromModel(objs []*metamodel.Object) ([]Port, error) {
	var out []Port
	for _, o := range objs {
		k, err := value.ParseKind(o.GetString("kind"))
		if err != nil {
			return nil, err
		}
		out = append(out, Port{Name: o.GetString("name"), Kind: k})
	}
	return out, nil
}

func networkFromModel(no *metamodel.Object) (*Network, error) {
	ins, err := portsFromModel(no.Refs("inputs"))
	if err != nil {
		return nil, err
	}
	outs, err := portsFromModel(no.Refs("outputs"))
	if err != nil {
		return nil, err
	}
	net := NewNetwork(no.GetString("name"), ins, outs)
	for _, bo := range no.Refs("blocks") {
		b, err := blockFromModel(bo)
		if err != nil {
			return nil, err
		}
		if err := net.Add(b); err != nil {
			return nil, err
		}
	}
	for _, co := range no.Refs("connections") {
		fb, fp := splitEndpoint(co.GetString("from"))
		tb, tp := splitEndpoint(co.GetString("to"))
		if err := net.Connect(fb, fp, tb, tp); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func blockFromModel(bo *metamodel.Object) (Block, error) {
	name := bo.GetString("name")
	ins, err := portsFromModel(bo.Refs("inputs"))
	if err != nil {
		return nil, err
	}
	outs, err := portsFromModel(bo.Refs("outputs"))
	if err != nil {
		return nil, err
	}
	switch bo.Class().Name {
	case "BasicFB":
		params := map[string]value.Value{}
		for _, po := range bo.Refs("params") {
			k, err := value.ParseKind(po.GetString("kind"))
			if err != nil {
				return nil, err
			}
			v, err := value.Parse(k, po.GetString("value"))
			if err != nil {
				return nil, err
			}
			params[po.GetString("name")] = v
		}
		formulas := map[string]string{}
		for _, fo := range bo.Refs("formulas") {
			formulas[fo.GetString("name")] = fo.GetString("expr")
		}
		return NewBasicFB(name, ins, outs, params, formulas)
	case "StateMachineFB":
		cfg := SMConfig{Name: name, Inputs: ins, Outputs: outs}
		for _, so := range bo.Refs("states") {
			sd := SMStateDef{Name: so.GetString("name"), Entry: map[string]string{}}
			for _, aso := range so.Refs("entry") {
				sd.Entry[aso.GetString("name")] = aso.GetString("expr")
			}
			init, _ := so.Get("initial")
			if init.Bool() {
				cfg.Initial = sd.Name
			}
			cfg.States = append(cfg.States, sd)
		}
		for _, to := range bo.Refs("transitions") {
			td := SMTransitionDef{
				Name:    to.GetString("name"),
				From:    to.Ref("from").GetString("name"),
				To:      to.Ref("to").GetString("name"),
				Guard:   to.GetString("guard"),
				Actions: map[string]string{},
			}
			for _, aso := range to.Refs("actions") {
				td.Actions[aso.GetString("name")] = aso.GetString("expr")
			}
			cfg.Transitions = append(cfg.Transitions, td)
		}
		return NewStateMachineFB(cfg)
	case "CompositeFB":
		nets := bo.Refs("network")
		if len(nets) != 1 {
			return nil, fmt.Errorf("comdes: composite %s must have one network", name)
		}
		net, err := networkFromModel(nets[0])
		if err != nil {
			return nil, err
		}
		return NewCompositeFB(net)
	case "ModalFB":
		var modes []ModalMode
		var fallback Block
		for _, mo := range bo.Refs("modes") {
			blocks := mo.Refs("block")
			if len(blocks) != 1 {
				return nil, fmt.Errorf("comdes: mode in %s must have one block", name)
			}
			inner, err := blockFromModel(blocks[0])
			if err != nil {
				return nil, err
			}
			fb, _ := mo.Get("fallback")
			if fb.Bool() {
				fallback = inner
				continue
			}
			sel, _ := mo.Get("selector")
			modes = append(modes, ModalMode{Selector: sel.Int(), Block: inner})
		}
		return NewModalFB(name, bo.GetString("selectorInput"), ins, outs, modes, fallback)
	}
	return nil, fmt.Errorf("comdes: unknown block class %q", bo.Class().Name)
}
