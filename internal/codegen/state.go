package codegen

import (
	"fmt"

	"repro/internal/value"
)

// Explicit-state forms of the VM: everything a Machine carries between
// instructions — program counter, operand stack, halt flag and the
// accumulated ExecResult (cycles, steps, pending emits, break bookkeeping)
// — surfaced as a copyable, JSON-serializable value. A release interrupted
// mid-body (preempted, suspended at a breakpoint, or simply mid-slice) is
// fully described by one MachineState plus the unit body it runs; restoring
// it onto a fresh Machine resumes at the exact instruction boundary.

// EmitState is the portable form of one pending EmitRef.
type EmitState struct {
	Template int           `json:"template"`
	Value    value.Encoded `json:"value,omitempty"`
	HasValue bool          `json:"hasValue,omitempty"`
}

// ExecResultState is the portable form of an ExecResult.
type ExecResultState struct {
	Cycles      uint64      `json:"cycles"`
	Steps       uint64      `json:"steps"`
	CheckCycles uint64      `json:"checkCycles,omitempty"`
	BreakPC     int         `json:"breakPC"`
	Emits       []EmitState `json:"emits,omitempty"`
}

// MachineState is the complete execution state of one Machine, minus the
// code it runs (identified externally — the board names the unit whose
// body the machine executes). Snapshot/Restore round-trip it exactly.
type MachineState struct {
	PC     int             `json:"pc"`
	Halted bool            `json:"halted,omitempty"`
	Stack  []value.Encoded `json:"stack,omitempty"`
	Res    ExecResultState `json:"res"`
}

// Clone deep-copies the state: the pending-emit slice is duplicated (its
// elements are plain values), nil-ness preserved so a clone marshals to
// the same bytes as the original.
func (st ExecResultState) Clone() ExecResultState {
	cp := st
	if st.Emits != nil {
		cp.Emits = make([]EmitState, len(st.Emits))
		copy(cp.Emits, st.Emits)
	}
	return cp
}

// Clone deep-copies the machine state; the copy shares no storage with the
// original, so a forked variant can run without back-mutating the source.
func (st MachineState) Clone() MachineState {
	cp := st
	if st.Stack != nil {
		cp.Stack = make([]value.Encoded, len(st.Stack))
		copy(cp.Stack, st.Stack)
	}
	cp.Res = st.Res.Clone()
	return cp
}

// EncodeExecResult deep-copies an ExecResult into its portable form.
func EncodeExecResult(r ExecResult) ExecResultState {
	st := ExecResultState{
		Cycles: r.Cycles, Steps: r.Steps,
		CheckCycles: r.CheckCycles, BreakPC: r.BreakPC,
	}
	if len(r.Emits) > 0 {
		st.Emits = make([]EmitState, len(r.Emits))
		for i, e := range r.Emits {
			st.Emits[i] = EmitState{Template: e.Template, Value: value.Encode(e.Value), HasValue: e.HasValue}
		}
	}
	return st
}

// DecodeExecResult converts the portable form back to a live ExecResult.
func DecodeExecResult(st ExecResultState) (ExecResult, error) {
	r := ExecResult{
		Cycles: st.Cycles, Steps: st.Steps,
		CheckCycles: st.CheckCycles, BreakPC: st.BreakPC,
	}
	if len(st.Emits) > 0 {
		r.Emits = make([]EmitRef, len(st.Emits))
		for i, e := range st.Emits {
			v, err := value.Decode(e.Value)
			if err != nil {
				return ExecResult{}, fmt.Errorf("codegen: emit %d: %w", i, err)
			}
			r.Emits[i] = EmitRef{Template: e.Template, Value: v, HasValue: e.HasValue}
		}
	}
	return r, nil
}

// Snapshot captures the machine's complete execution state. The returned
// state shares nothing with the machine: continuing to run the machine
// does not mutate an earlier snapshot.
func (m *Machine) Snapshot() MachineState {
	st := MachineState{PC: m.PC, Halted: m.halted, Res: EncodeExecResult(m.Res)}
	if len(m.stack) > 0 {
		st.Stack = make([]value.Encoded, len(m.stack))
		for i, v := range m.stack {
			st.Stack[i] = value.Encode(v)
		}
	}
	return st
}

// Restore rewinds the machine to a previously captured state. The machine
// keeps its Program, Code and Bus (restore binds state to code externally,
// by unit name); stack and emit buffers are rebuilt from the snapshot, so
// a restored machine never aliases the snapshot or the machine it was
// taken from.
func (m *Machine) Restore(st MachineState) error {
	res, err := DecodeExecResult(st.Res)
	if err != nil {
		return err
	}
	stack := m.stack[:0]
	for i, e := range st.Stack {
		v, err := value.Decode(e)
		if err != nil {
			return fmt.Errorf("codegen: stack slot %d: %w", i, err)
		}
		stack = append(stack, v)
	}
	m.PC = st.PC
	m.halted = st.Halted
	m.stack = stack
	m.Res = res
	return nil
}
