package codegen

import (
	"fmt"
	"testing"

	"repro/internal/comdes"
	"repro/internal/value"
	"repro/models"
)

func heatingProgram(t testing.TB) (*Program, *comdes.System) {
	t.Helper()
	sys, err := models.Heating(models.HeatingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, sys
}

// TestRunBudgetSlicingEquivalence: executing a body in small cycle slices
// must consume exactly the cycles, produce exactly the bus state, and
// raise exactly the emits of one uninterrupted run — the invariant the
// preemptive board scheduler depends on.
func TestRunBudgetSlicingEquivalence(t *testing.T) {
	prog, _ := heatingProgram(t)
	u := prog.Unit("heater")

	prep := func() *MapBus {
		bus := NewMapBus(prog.Symbols)
		if _, err := Exec(prog, u.Init, bus); err != nil {
			t.Fatal(err)
		}
		_ = bus.StoreSym(u.InputSyms["temp"], value.F(10))
		_ = bus.StoreSym(u.InputSyms["mode"], value.I(2))
		for _, lp := range u.InLatch {
			v, _ := bus.LoadSym(lp.Work)
			_ = bus.StoreSym(lp.Out, v)
		}
		return bus
	}

	oneBus := prep()
	oneShot := NewMachine(prog, u.Body, oneBus)
	oneRes, err := oneShot.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []uint64{1, 7, 64} {
		slicedBus := prep()
		m := NewMachine(prog, u.Body, slicedBus)
		var slices int
		for !m.Done() {
			if _, err := m.RunBudget(budget); err != nil {
				t.Fatal(err)
			}
			slices++
			if slices > 10_000 {
				t.Fatal("budgeted run does not terminate")
			}
		}
		if m.Res.Cycles != oneRes.Cycles {
			t.Errorf("budget %d: cycles = %d, want %d", budget, m.Res.Cycles, oneRes.Cycles)
		}
		if m.Res.Steps != oneRes.Steps {
			t.Errorf("budget %d: steps = %d, want %d", budget, m.Res.Steps, oneRes.Steps)
		}
		if len(m.Res.Emits) != len(oneRes.Emits) {
			t.Errorf("budget %d: %d emits, want %d", budget, len(m.Res.Emits), len(oneRes.Emits))
		}
		if budget == 1 && slices < int(oneRes.Steps) {
			t.Errorf("budget 1 ran %d slices for %d steps — slices too greedy", slices, oneRes.Steps)
		}
		for i := range slicedBus.Vals {
			if !value.Equal(slicedBus.Vals[i], oneBus.Vals[i]) {
				t.Fatalf("budget %d: symbol %s = %v, want %v", budget,
					prog.Symbols.Sym(i).Name, slicedBus.Vals[i], oneBus.Vals[i])
			}
		}
	}
}

// TestRunBudgetOvershootsAtInstructionBoundary: a slice never stops
// mid-instruction; the instruction in flight completes even when it blows
// the budget.
func TestRunBudgetOvershootsAtInstructionBoundary(t *testing.T) {
	prog, _ := heatingProgram(t)
	u := prog.Unit("heater")
	bus := NewMapBus(prog.Symbols)
	m := NewMachine(prog, u.Body, bus)
	res, err := m.RunBudget(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Fatalf("budget 1 executed %d instructions, want exactly 1", res.Steps)
	}
	if res.Cycles < 1 {
		t.Fatal("no cycles charged")
	}
}

// TestMachineResetReuse: a pooled machine reset between releases behaves
// exactly like a fresh allocation and does not allocate for its stack or
// emit buffer on the second run.
func TestMachineResetReuse(t *testing.T) {
	prog, _ := heatingProgram(t)
	u := prog.Unit("heater")
	bus := NewMapBus(prog.Symbols)
	if _, err := Exec(prog, u.Init, bus); err != nil {
		t.Fatal(err)
	}
	// A fixed point of the thermostat (warm room, Idle state): every run
	// takes the identical path, so cycle counts must match exactly.
	latch := func() {
		_ = bus.StoreSym(u.InputSyms["temp"], value.F(25))
		_ = bus.StoreSym(u.InputSyms["mode"], value.I(2))
		for _, lp := range u.InLatch {
			v, _ := bus.LoadSym(lp.Work)
			_ = bus.StoreSym(lp.Out, v)
		}
	}
	latch()
	m := NewMachine(prog, u.Body, bus)
	first, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	firstCycles := first.Cycles
	for i := 0; i < 3; i++ {
		latch()
		m.Reset(u.Body)
		if m.Done() || m.PC != 0 {
			t.Fatal("reset machine not rewound")
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != firstCycles {
			t.Errorf("rerun %d: cycles = %d, want %d", i, res.Cycles, firstCycles)
		}
		if res.BreakPC != -1 {
			t.Errorf("rerun %d: BreakPC = %d", i, res.BreakPC)
		}
	}
}

// TestRunBudgetBoundariesInsideFusedPatterns drives hand-assembled bodies
// exhibiting each fused superinstruction shape through every possible
// budget, slicing the interpreter and the threaded backend in lockstep.
// Every interior cycle boundary of every fused pattern is hit by some
// budget, so the de-fuse rule (fall back to single-step dispatch whenever
// a boundary could land inside) is exhaustively checked against the
// interpreter's instruction-boundary preemption — including the
// division-by-zero error exit inside a fused region.
func TestRunBudgetBoundariesInsideFusedPatterns(t *testing.T) {
	p := fuzzProgram(t)
	ab := func(op Op) int32 { return int32(arithByte(op)) }
	patterns := map[string][]Instr{
		"load-push-arith-store": {
			{Op: OpLoad, A: 0}, {Op: OpPush, A: 1}, {Op: OpAdd, A: ab(OpAdd)}, {Op: OpStore, A: 3},
			{Op: OpHalt},
		},
		"load-push-cmp-jz": {
			{Op: OpLoad, A: 0}, {Op: OpPush, A: 1}, {Op: OpLT}, {Op: OpJZ, A: 6},
			{Op: OpPush, A: 4}, {Op: OpStore, A: 4},
			{Op: OpHalt},
		},
		"load-push-eq-jz": {
			{Op: OpLoad, A: 1}, {Op: OpPush, A: 3}, {Op: OpEQ}, {Op: OpJZ, A: 6},
			{Op: OpPush, A: 4}, {Op: OpStore, A: 4},
			{Op: OpHalt},
		},
		"push-store": {
			{Op: OpPush, A: 4}, {Op: OpStore, A: 4},
			{Op: OpHalt},
		},
		"load-store": {
			{Op: OpLoad, A: 0}, {Op: OpStore, A: 3},
			{Op: OpHalt},
		},
		"load-push-div0-store": {
			{Op: OpLoad, A: 1}, {Op: OpPush, A: 3}, {Op: OpDiv, A: ab(OpDiv)}, {Op: OpStore, A: 4},
			{Op: OpHalt},
		},
		"back-to-back-fusions": {
			{Op: OpPush, A: 1}, {Op: OpStore, A: 0},
			{Op: OpLoad, A: 0}, {Op: OpStore, A: 3},
			{Op: OpLoad, A: 0}, {Op: OpPush, A: 1}, {Op: OpMul, A: ab(OpMul)}, {Op: OpStore, A: 3},
			{Op: OpHalt},
		},
	}
	for name, code := range patterns {
		th := Thread(p, code)
		if th == nil {
			t.Fatalf("%s: Thread returned nil", name)
		}
		fused := false
		for i := range th.nodes {
			if th.nodes[i].fused != nil {
				fused = true
			}
		}
		if !fused {
			t.Fatalf("%s: no superinstruction was fused", name)
		}
		var total uint64
		for _, in := range code {
			total += in.Op.Cycles()
		}
		for budget := uint64(1); budget <= total+3; budget++ {
			seed := func(b *MapBus) {
				_ = b.StoreSym(0, value.F(2.25))
				_ = b.StoreSym(1, value.I(-4))
			}
			ib, tb := NewMapBus(p.Symbols), NewMapBus(p.Symbols)
			seed(ib)
			seed(tb)
			im, tm := NewMachine(p, code, ib), NewMachine(p, code, tb)
			tm.SetThreaded(th)
			for slice := 0; ; slice++ {
				if slice > 1000 {
					t.Fatalf("%s budget %d: sliced run does not terminate", name, budget)
				}
				ires, ierr := im.RunBudget(budget)
				tres, terr := tm.RunBudget(budget)
				tag := fmt.Sprintf("%s budget=%d slice=%d", name, budget, slice)
				if (ierr == nil) != (terr == nil) || (ierr != nil && ierr.Error() != terr.Error()) {
					t.Fatalf("%s: interp err = %v, threaded err = %v", tag, ierr, terr)
				}
				if ires.Cycles != tres.Cycles || ires.Steps != tres.Steps || im.PC != tm.PC || im.Done() != tm.Done() {
					t.Fatalf("%s: interp (cyc %d steps %d pc %d done %v), threaded (cyc %d steps %d pc %d done %v)",
						tag, ires.Cycles, ires.Steps, im.PC, im.Done(),
						tres.Cycles, tres.Steps, tm.PC, tm.Done())
				}
				for i := range ib.Vals {
					if !value.Equal(ib.Vals[i], tb.Vals[i]) {
						t.Fatalf("%s: symbol %s: interp %v, threaded %v",
							tag, p.Symbols.Sym(i).Name, ib.Vals[i], tb.Vals[i])
					}
				}
				if ierr != nil || im.Done() {
					break
				}
			}
		}
	}
}
