// Package codegen is the model transformation stage of the MDD pipeline in
// Fig. 1 of the paper: it compiles a COMDES system model into executable
// code for the simulated embedded target (internal/target), replacing the
// C code generator of the COMDES Development Toolset.
//
// The output is a compact stack-machine IR plus everything a debugger
// needs around it:
//
//   - a symbol table assigning every signal, block output and state
//     variable a RAM address (what the JTAG watch engine reads),
//   - a pseudo-C listing with instruction↔line mapping (what the GDB/DDD
//     baseline debugger shows),
//   - debug info linking symbols and events back to model element ids
//     (what the GDM uses to animate the model),
//   - an optional *instrumentation pass* injecting command-interface emits
//     (the paper's active solution: "the application code itself sends out
//     commands by means of extra functional codes"),
//   - fault-injection options that deliberately mis-transform the model
//     (the paper's "implementation errors ... during model transformation"),
//     used by experiment E9.
package codegen

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/value"
)

// Op is an IR opcode.
type Op uint8

// The instruction set. Stack cells are value.Value so compiled semantics
// match the reference interpreter exactly (int/float distinction, typed
// comparisons).
const (
	OpNop   Op = iota
	OpPush     // push Consts[A]
	OpLoad     // push symbol A (decoded from RAM)
	OpStore    // pop into symbol A (encoded into RAM)
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpJmp  // pc = A
	OpJZ   // pop; if falsy pc = A
	OpJNZ  // pop; if truthy pc = A
	OpCall // builtin Builtins[A] with B args (popped right-to-left)
	OpEmit // emit event template A; if B != 0 pop the event value
	OpHalt
)

var opNames = [...]string{
	"NOP", "PUSH", "LOAD", "STORE", "ADD", "SUB", "MUL", "DIV", "MOD",
	"NEG", "NOT", "LT", "LE", "GT", "GE", "EQ", "NE", "JMP", "JZ", "JNZ",
	"CALL", "EMIT", "HALT",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", o)
}

// Cycles returns the target CPU cost of the opcode — a simple in-order
// cost model (loads/stores and division are slow; the EMIT instrumentation
// is expensive because it builds a command frame).
func (o Op) Cycles() uint64 {
	switch o {
	case OpNop:
		return 1
	case OpPush:
		return 1
	case OpLoad, OpStore:
		return 4
	case OpAdd, OpSub, OpNeg, OpNot:
		return 1
	case OpMul:
		return 3
	case OpDiv, OpMod:
		return 12
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return 1
	case OpJmp, OpJZ, OpJNZ:
		return 2
	case OpCall:
		return 16
	case OpEmit:
		return EmitCycles
	default:
		return 1
	}
}

// EmitCycles is the CPU cost of one instrumentation emit (building and
// queueing a command frame). Experiment E7 measures the resulting active
// command interface overhead.
const EmitCycles = 60

// Instr is one IR instruction. Line indexes Program.Source for debug info.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	Line int32
}

// Symbol is one RAM-resident variable.
type Symbol struct {
	Name    string
	Kind    value.Kind
	Addr    uint32
	Size    uint32
	Element string // model element id this symbol realises ("" if internal)
}

// SymbolTable allocates and resolves symbols. Addresses are assigned
// sequentially with 8-byte alignment from base 0.
type SymbolTable struct {
	syms   []Symbol
	byName map[string]int
	next   uint32
}

// NewSymbolTable creates an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{byName: map[string]int{}}
}

// Alloc creates a symbol; duplicate names are an error.
func (st *SymbolTable) Alloc(name string, kind value.Kind, element string) (int, error) {
	if _, dup := st.byName[name]; dup {
		return 0, fmt.Errorf("codegen: duplicate symbol %q", name)
	}
	size := value.ByteSize(kind)
	if size == 0 {
		return 0, fmt.Errorf("codegen: symbol %q has unrepresentable kind %v", name, kind)
	}
	idx := len(st.syms)
	st.syms = append(st.syms, Symbol{Name: name, Kind: kind, Addr: st.next, Size: uint32(size), Element: element})
	st.next += 8 // keep 8-byte slots for alignment
	st.byName[name] = idx
	return idx, nil
}

// Index returns the symbol index for name.
func (st *SymbolTable) Index(name string) (int, bool) {
	i, ok := st.byName[name]
	return i, ok
}

// Sym returns the symbol at index i.
func (st *SymbolTable) Sym(i int) Symbol { return st.syms[i] }

// Len returns the number of symbols.
func (st *SymbolTable) Len() int { return len(st.syms) }

// All returns the symbols in allocation order.
func (st *SymbolTable) All() []Symbol { return st.syms }

// RAMSize returns the total RAM footprint in bytes.
func (st *SymbolTable) RAMSize() uint32 { return st.next }

// EventTemplate is a pre-built command the EMIT instruction sends; the
// stack top supplies the numeric value when WithValue is set.
type EventTemplate struct {
	Type      protocol.EventType
	Source    string
	Arg1      string
	Arg2      string
	Element   string // model element id for the GDM binder
	WithValue bool
}

// LatchPair couples a working symbol with its published symbol: the board
// copies Work -> Out at the task's deadline instant (output latching) and
// In -> Work at release (input latching).
type LatchPair struct {
	Work int
	Out  int
}

// Unit is the compiled form of one actor: its task timing, init and body
// code, and the latch plans.
type Unit struct {
	Name     string
	Period   uint64
	Offset   uint64
	Deadline uint64

	// Priority is the task's fixed scheduling priority (higher preempts
	// lower) under the board's preemptive policy; equal priorities run
	// FIFO. Ignored by the cooperative policy.
	Priority int

	// MissSym / PreemptSym index the kernel-maintained RAM counters
	// "<actor>.__misses" and "<actor>.__preempts": the firmware stores the
	// task's cumulative deadline misses and preemptions there, so the
	// passive JTAG interface and on-target breakpoint conditions can see
	// scheduling incidents without any code instrumentation.
	MissSym    int
	PreemptSym int

	Init []Instr // run once at boot
	Body []Instr // run every release

	// ThreadedInit / ThreadedBody are the direct-threaded compiled forms
	// of Init/Body, built eagerly by Compile and shared immutably by every
	// machine (and every farm session) running this unit. Nil means the
	// code could not be threaded; execution falls back to the interpreter.
	ThreadedInit *Threaded `json:"-"`
	ThreadedBody *Threaded `json:"-"`

	// InLatch copies __io input symbols to latched input symbols at
	// release; OutLatch copies working outputs to published symbols at the
	// deadline.
	InLatch  []LatchPair
	OutLatch []LatchPair

	// SignalEvents maps published output symbol index -> event template
	// index, used by the instrumented board to emit EvSignal at the
	// deadline latch.
	SignalEvents map[int]int

	// InputSyms maps actor input port name -> __io symbol index (where the
	// environment and signal bindings write).
	InputSyms map[string]int
	// OutputSyms maps actor output port name -> published symbol index.
	OutputSyms map[string]int
}

// Program is the complete compiled artifact.
type Program struct {
	Name    string
	Consts  []value.Value
	Symbols *SymbolTable
	Units   []*Unit
	Events  []EventTemplate
	Source  []string // pseudo-C listing, one entry per line

	// Instrumented records whether the active command interface was woven
	// in (experiment E7 compares instrumented vs clean binaries).
	Instrumented bool

	// BusDropSym indexes the kernel-maintained "__busdrops" RAM counter
	// (cumulative frames this node lost on the time-triggered bus), or -1
	// when the program was compiled without Options.BusDrops. Like the
	// per-actor __misses/__preempts counters it is a plain symbol, so the
	// passive JTAG interface and on-target breakpoint conditions observe
	// bus loss at zero instrumentation cost.
	BusDropSym int
}

// Unit returns the named unit, or nil.
func (p *Program) Unit(name string) *Unit {
	for _, u := range p.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// constIndex interns a constant.
func (p *Program) constIndex(v value.Value) int32 {
	for i, c := range p.Consts {
		if c.Kind() == v.Kind() && value.Equal(c, v) {
			return int32(i)
		}
	}
	p.Consts = append(p.Consts, v)
	return int32(len(p.Consts) - 1)
}

// eventIndex interns an event template.
func (p *Program) eventIndex(t EventTemplate) int32 {
	for i, e := range p.Events {
		if e == t {
			return int32(i)
		}
	}
	p.Events = append(p.Events, t)
	return int32(len(p.Events) - 1)
}

// line appends a listing line and returns its index.
func (p *Program) line(format string, args ...interface{}) int32 {
	p.Source = append(p.Source, fmt.Sprintf(format, args...))
	return int32(len(p.Source) - 1)
}

// Disassemble renders a unit's body for diagnostics.
func (p *Program) Disassemble(code []Instr) []string {
	out := make([]string, len(code))
	for i, in := range code {
		s := fmt.Sprintf("%4d  %-5s", i, in.Op)
		switch in.Op {
		case OpPush:
			s += fmt.Sprintf(" %v", p.Consts[in.A])
		case OpLoad, OpStore:
			s += " " + p.Symbols.Sym(int(in.A)).Name
		case OpJmp, OpJZ, OpJNZ:
			s += fmt.Sprintf(" ->%d", in.A)
		case OpCall:
			s += fmt.Sprintf(" %s/%d", builtinNames[in.A], in.B)
		case OpEmit:
			s += fmt.Sprintf(" %s %s", p.Events[in.A].Type, p.Events[in.A].Source)
		}
		out[i] = s
	}
	return out
}
