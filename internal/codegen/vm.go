package codegen

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// builtinNames is the stable builtin index space shared by the compiler
// and the VM (OpCall.A indexes this slice).
var builtinNames = expr.Builtins()

// builtinIdx inverts builtinNames once at package init; the compiler and
// the threaded backend resolve call sites through it in O(1).
var builtinIdx = func() map[string]int32 {
	m := make(map[string]int32, len(builtinNames))
	for i, n := range builtinNames {
		m[n] = int32(i)
	}
	return m
}()

func builtinIndex(name string) (int32, bool) {
	i, ok := builtinIdx[name]
	return i, ok
}

// Bus is the VM's access to symbol storage. The target board implements it
// over simulated RAM; tests use an in-memory map.
type Bus interface {
	LoadSym(idx int) (value.Value, error)
	StoreSym(idx int, v value.Value) error
}

// EmitRef is one pending instrumentation event produced by OpEmit.
type EmitRef struct {
	Template int
	Value    value.Value
	HasValue bool
}

// BreakHook is the VM's attachment point for a target-resident breakpoint
// agent. It is consulted at the two instrumentation sites of the generated
// code — after every OpStore (a symbol just changed) and after every
// OpEmit (a model event was just raised) — and may halt the VM *at that
// instruction*, before the rest of the release body runs and before the
// deadline latch publishes anything. Each call reports the cycles spent
// evaluating armed predicates so debug overhead is charged to the target
// CPU like any other instruction.
type BreakHook interface {
	// CheckStore runs after symbol idx was written with v; hit halts the VM.
	CheckStore(idx int, v value.Value) (hit bool, cycles uint64)
	// CheckEmit runs after ref was queued; hit halts the VM.
	CheckEmit(ref EmitRef) (hit bool, cycles uint64)
}

// BreakCheckCycles is the target CPU cost of evaluating one armed
// breakpoint predicate at one check site (a compiled compare over RAM).
const BreakCheckCycles = 8

// ExecResult carries the outcome of one code run.
type ExecResult struct {
	Cycles uint64
	Steps  uint64
	Emits  []EmitRef

	// CheckCycles is the share of Cycles spent evaluating on-target
	// breakpoint predicates (debug overhead, included in Cycles).
	CheckCycles uint64
	// BreakPC is the instruction at which a BreakHook halted the run, or
	// -1 when the run completed (or errored) without a hit. The machine's
	// PC already points past it, so a later Run continues after the hit.
	BreakPC int
}

// maxSteps bounds runaway programs (compiler bugs), not legitimate code.
const maxSteps = 1_000_000

// Machine is a single-steppable VM instance over one code sequence. The
// code-level baseline debugger (internal/baseline) steps it instruction by
// instruction, exactly as GDB single-steps a target.
type Machine struct {
	Prog *Program
	Code []Instr
	Bus  Bus

	// Hook, when set, is the target-resident breakpoint agent consulted at
	// OpStore/OpEmit sites.
	Hook BreakHook

	PC    int
	stack []value.Value
	Res   ExecResult

	halted bool

	// threaded, when set, is the direct-threaded compiled form of Code;
	// Run/RunBudget dispatch through it instead of the Step switch. All
	// machine state (PC, stack, Res, halted) is shared between the two
	// dispatch paths, so they interleave freely at instruction boundaries
	// (Snapshot/Restore, external single-Step, slice resumption).
	threaded *Threaded
}

// NewMachine prepares a VM run.
func NewMachine(p *Program, code []Instr, bus Bus) *Machine {
	return &Machine{Prog: p, Code: code, Bus: bus, stack: make([]value.Value, 0, 16),
		Res: ExecResult{BreakPC: -1}}
}

// Reset rewinds the machine for a fresh run of code, keeping the stack and
// emit buffers (capacity retained) so a pooled machine executes a new
// release without allocating.
func (m *Machine) Reset(code []Instr) {
	if m.threaded != nil && !m.threaded.matches(code) {
		m.threaded = nil
	}
	m.Code = code
	m.PC = 0
	m.halted = false
	m.stack = m.stack[:0]
	emits := m.Res.Emits[:0]
	m.Res = ExecResult{BreakPC: -1, Emits: emits}
}

// SetThreaded attaches a direct-threaded compiled form of the machine's
// code; Run/RunBudget then dispatch through it. A form built for different
// code (or nil) detaches, falling back to the interpreter. The Threaded
// value is immutable and may be shared by any number of machines.
func (m *Machine) SetThreaded(t *Threaded) {
	if t != nil && !t.matches(m.Code) {
		t = nil
	}
	m.threaded = t
	if t != nil && t.emits > cap(m.Res.Emits) && len(m.Res.Emits) == 0 {
		// Pre-size the machine-owned emit buffer to the body's worst case
		// so OpEmit never grows it mid-run; Reset keeps the capacity.
		m.Res.Emits = make([]EmitRef, 0, t.emits)
	}
}

// ThreadedAttached reports whether Run/RunBudget use the threaded backend.
func (m *Machine) ThreadedAttached() bool { return m.threaded != nil }

// Done reports whether execution has finished.
func (m *Machine) Done() bool { return m.halted || m.PC >= len(m.Code) }

// CurrentLine returns the listing line of the next instruction (-1 when
// done).
func (m *Machine) CurrentLine() int32 {
	if m.Done() {
		return -1
	}
	return m.Code[m.PC].Line
}

func (m *Machine) pop() value.Value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

// Step executes one instruction. It returns true while execution
// continues and false once the program is done.
func (m *Machine) Step() (bool, error) {
	if m.Done() {
		return false, nil
	}
	if m.Res.Steps >= maxSteps {
		return false, fmt.Errorf("codegen: step limit exceeded at pc %d", m.PC)
	}
	in := m.Code[m.PC]
	m.Res.Steps++
	m.Res.Cycles += in.Op.Cycles()
	switch in.Op {
	case OpNop:
	case OpPush:
		m.stack = append(m.stack, m.Prog.Consts[in.A])
	case OpLoad:
		v, err := m.Bus.LoadSym(int(in.A))
		if err != nil {
			return false, err
		}
		m.stack = append(m.stack, v)
	case OpStore:
		v := m.pop()
		if err := m.Bus.StoreSym(int(in.A), v); err != nil {
			return false, err
		}
		if m.Hook != nil {
			hit, cost := m.Hook.CheckStore(int(in.A), v)
			m.Res.Cycles += cost
			m.Res.CheckCycles += cost
			if hit {
				return false, m.breakAt()
			}
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		b, a := m.pop(), m.pop()
		// The compiler folds the operator byte into A; hand-assembled code
		// (A == 0) still derives it from the opcode.
		ab := byte(in.A)
		if ab == 0 {
			ab = arithByte(in.Op)
		}
		r, err := value.Arith(ab, a, b)
		if err != nil {
			return false, fmt.Errorf("codegen: pc %d: %w", m.PC, err)
		}
		m.stack = append(m.stack, r)
	case OpNeg:
		v, err := value.Neg(m.pop())
		if err != nil {
			return false, fmt.Errorf("codegen: pc %d: %w", m.PC, err)
		}
		m.stack = append(m.stack, v)
	case OpNot:
		m.stack = append(m.stack, value.B(!m.pop().Bool()))
	case OpLT, OpLE, OpGT, OpGE:
		b, a := m.pop(), m.pop()
		c, err := value.Compare(a, b)
		if err != nil {
			return false, fmt.Errorf("codegen: pc %d: %w", m.PC, err)
		}
		var r bool
		switch in.Op {
		case OpLT:
			r = c < 0
		case OpLE:
			r = c <= 0
		case OpGT:
			r = c > 0
		default:
			r = c >= 0
		}
		m.stack = append(m.stack, value.B(r))
	case OpEQ:
		b, a := m.pop(), m.pop()
		m.stack = append(m.stack, value.B(value.Equal(a, b)))
	case OpNE:
		b, a := m.pop(), m.pop()
		m.stack = append(m.stack, value.B(!value.Equal(a, b)))
	case OpJmp:
		m.PC = int(in.A)
		return !m.Done(), nil
	case OpJZ:
		if !m.pop().Bool() {
			m.PC = int(in.A)
			return !m.Done(), nil
		}
	case OpJNZ:
		if m.pop().Bool() {
			m.PC = int(in.A)
			return !m.Done(), nil
		}
	case OpCall:
		// The top argc stack cells already sit in call order — pass them as
		// an in-place window instead of copying into a fresh slice.
		argc := int(in.B)
		base := len(m.stack) - argc
		r, err := expr.CallBuiltin(builtinNames[in.A], m.stack[base:])
		m.stack = m.stack[:base]
		if err != nil {
			return false, fmt.Errorf("codegen: pc %d: %w", m.PC, err)
		}
		m.stack = append(m.stack, r)
	case OpEmit:
		ref := EmitRef{Template: int(in.A)}
		if in.B != 0 {
			ref.Value = m.pop()
			ref.HasValue = true
		}
		m.Res.Emits = append(m.Res.Emits, ref)
		if m.Hook != nil {
			hit, cost := m.Hook.CheckEmit(ref)
			m.Res.Cycles += cost
			m.Res.CheckCycles += cost
			if hit {
				return false, m.breakAt()
			}
		}
	case OpHalt:
		m.halted = true
		return false, nil
	default:
		return false, fmt.Errorf("codegen: unknown opcode %v at pc %d", in.Op, m.PC)
	}
	m.PC++
	return !m.Done(), nil
}

// breakAt records a break-hook hit at the current instruction and leaves
// the PC pointing past it so a later Run continues after the hit.
func (m *Machine) breakAt() error {
	m.Res.BreakPC = m.PC
	m.PC++
	return nil
}

// Run steps the machine until the program completes, a runtime error
// aborts it, or the break hook halts it (Res.BreakPC >= 0). Calling Run
// again after a break continues from the instruction after the hit —
// the resume path of the target-resident debugger.
func (m *Machine) Run() (ExecResult, error) {
	return m.RunBudget(^uint64(0))
}

// RunBudget is Run bounded by a cycle budget: the machine executes
// instructions until the run has consumed at least budget cycles (the
// instruction in flight completes, so the total may overshoot by one
// instruction's cost), the program finishes, a runtime error aborts it, or
// the break hook halts it. This is the slice primitive of the preemptive
// board scheduler — a release interrupted at a budget boundary resumes at
// the next instruction on the next call.
func (m *Machine) RunBudget(budget uint64) (ExecResult, error) {
	if m.threaded != nil {
		return m.runThreaded(budget)
	}
	m.Res.BreakPC = -1
	start := m.Res.Cycles
	for {
		more, err := m.Step()
		if err != nil {
			return m.Res, err
		}
		if !more || m.Res.BreakPC >= 0 || m.Res.Cycles-start >= budget {
			return m.Res, nil
		}
	}
}

// Exec runs one code sequence to completion on the bus, returning the
// cycle count and the instrumentation events raised. Runtime errors
// (division by zero, type errors) abort execution — the same contract as
// the reference interpreter.
func Exec(p *Program, code []Instr, bus Bus) (ExecResult, error) {
	return ExecHook(p, code, bus, nil)
}

// ExecHook is Exec with a target-resident break hook attached; the run may
// therefore stop early with Res.BreakPC >= 0 (the firmware suspends the
// release and keeps the Machine for resumption).
func ExecHook(p *Program, code []Instr, bus Bus, hook BreakHook) (ExecResult, error) {
	m := NewMachine(p, code, bus)
	m.Hook = hook
	return m.Run()
}

func arithByte(op Op) byte {
	switch op {
	case OpAdd:
		return '+'
	case OpSub:
		return '-'
	case OpMul:
		return '*'
	case OpDiv:
		return '/'
	default:
		return '%'
	}
}

// MapBus is a simple Bus over a value slice, used by tests and the
// LabVIEW-style simulation baseline (no RAM encoding).
type MapBus struct {
	Table *SymbolTable
	Vals  []value.Value
}

// NewMapBus creates a bus with zero-initialised slots.
func NewMapBus(st *SymbolTable) *MapBus {
	vals := make([]value.Value, st.Len())
	for i := range vals {
		vals[i] = value.Zero(st.Sym(i).Kind)
	}
	return &MapBus{Table: st, Vals: vals}
}

// LoadSym implements Bus.
func (m *MapBus) LoadSym(idx int) (value.Value, error) {
	if idx < 0 || idx >= len(m.Vals) {
		return value.Value{}, fmt.Errorf("codegen: symbol index %d out of range", idx)
	}
	return m.Vals[idx], nil
}

// StoreSym implements Bus.
func (m *MapBus) StoreSym(idx int, v value.Value) error {
	if idx < 0 || idx >= len(m.Vals) {
		return fmt.Errorf("codegen: symbol index %d out of range", idx)
	}
	cv, err := value.Convert(v, m.Table.Sym(idx).Kind)
	if err != nil {
		return err
	}
	m.Vals[idx] = cv
	return nil
}
