package codegen

import (
	"fmt"

	"repro/internal/comdes"
	"repro/internal/expr"
	"repro/internal/protocol"
	"repro/internal/value"
)

// Instrument selects which model-level execution points the active command
// interface reports (the paper's Fig. 6 step 4 "command setting": which
// command triggers which reaction — here, which code points emit commands).
type Instrument struct {
	StateEnter  bool
	Transitions bool
	Signals     bool // EvSignal for every actor output at its deadline latch
	TaskEvents  bool // EvTaskStart / EvTaskDeadline per task
}

// Any reports whether any instrumentation is enabled.
func (i Instrument) Any() bool {
	return i.StateEnter || i.Transitions || i.Signals || i.TaskEvents
}

// Rewire deliberately mis-wires one connection of an actor's top network
// during compilation — a seeded model-transformation bug (experiment E9).
type Rewire struct {
	Actor     string
	ConnIndex int
	FromBlock string
	FromPort  string
}

// Options configures a compilation.
type Options struct {
	Instrument Instrument
	// FaultNegateGuard, when set to "actor.block.transition", compiles
	// that transition's guard negated — an implementation error.
	FaultNegateGuard string
	// FaultRewire, when non-nil, reroutes one connection — an
	// implementation error.
	FaultRewire *Rewire
	// BusDrops allocates the node-level "__busdrops" RAM counter the
	// firmware maintains on a time-triggered cluster bus. Off by default so
	// single-board and constant-latency programs keep their exact RAM
	// layout.
	BusDrops bool
}

// Compile transforms a validated COMDES system into a Program.
func Compile(sys *comdes.System, opts Options) (*Program, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{
		prog: &Program{Name: sys.Name(), Symbols: NewSymbolTable(), Instrumented: opts.Instrument.Any()},
		opts: opts,
	}
	c.prog.line("// generated from COMDES system %q — pseudo-C listing", sys.Name())
	c.prog.BusDropSym = -1
	for _, a := range sys.Actors {
		if err := c.compileActor(a); err != nil {
			return nil, err
		}
	}
	if opts.BusDrops {
		sym, err := c.alloc("__busdrops", value.Int, "")
		if err != nil {
			return nil, err
		}
		c.prog.BusDropSym = sym
	}
	// Ahead-of-time backend: thread every unit's code now, while the
	// Program is still exclusively owned, so the compiled form travels
	// with the shared Program (the farm compiles once per model) and no
	// later consumer ever mutates it concurrently.
	for _, u := range c.prog.Units {
		u.ThreadedInit = Thread(c.prog, u.Init)
		u.ThreadedBody = Thread(c.prog, u.Body)
	}
	return c.prog, nil
}

type compiler struct {
	prog *Program
	opts Options
	unit *Unit
}

// alloc wraps symbol allocation with error accumulation context.
func (c *compiler) alloc(name string, kind value.Kind, element string) (int, error) {
	return c.prog.Symbols.Alloc(name, kind, element)
}

func (c *compiler) compileActor(a *comdes.Actor) error {
	u := &Unit{
		Name:         a.Name(),
		Period:       a.Task.PeriodNs,
		Offset:       a.Task.OffsetNs,
		Deadline:     a.Task.DeadlineNs,
		Priority:     a.Task.Priority,
		SignalEvents: map[int]int{},
		InputSyms:    map[string]int{},
		OutputSyms:   map[string]int{},
	}
	c.unit = u
	c.prog.line("")
	ln := c.prog.line("void task_%s(void) { // period %d ns, deadline %d ns", a.Name(), u.Period, u.Deadline)

	// Actor input ports: an __io symbol (written asynchronously by the
	// environment / bindings) and a latched symbol (stable during the task
	// instance).
	inSyms := map[string]int{}
	for _, p := range a.Inputs() {
		io, err := c.alloc(a.Name()+"."+p.Name+"__io", p.Kind, "")
		if err != nil {
			return err
		}
		latched, err := c.alloc(a.Name()+"."+p.Name, p.Kind, comdes.PortID(a.Name(), "in", p.Name))
		if err != nil {
			return err
		}
		u.InputSyms[p.Name] = io
		u.InLatch = append(u.InLatch, LatchPair{Work: io, Out: latched})
		inSyms[p.Name] = latched
		c.prog.line("  latch_input(%s); // at release", p.Name)
	}

	net := a.Net
	if c.opts.FaultRewire != nil && c.opts.FaultRewire.Actor == a.Name() {
		net = rewiredNetwork(net, *c.opts.FaultRewire)
	}

	resolveIn := func(port string) (int, error) {
		s, ok := inSyms[port]
		if !ok {
			return 0, fmt.Errorf("codegen: actor %s: unresolved network input %q", a.Name(), port)
		}
		return s, nil
	}
	netOuts, err := c.compileNetwork(a.Name(), net, resolveIn, &u.Init, &u.Body, ln)
	if err != nil {
		return err
	}

	// Published output symbols + deadline latch plan.
	for _, p := range a.Outputs() {
		pub, err := c.alloc(a.Name()+"."+p.Name+"__pub", p.Kind, comdes.PortID(a.Name(), "out", p.Name))
		if err != nil {
			return err
		}
		work, ok := netOuts[p.Name]
		if !ok {
			return fmt.Errorf("codegen: actor %s: output %q not driven", a.Name(), p.Name)
		}
		u.OutputSyms[p.Name] = pub
		u.OutLatch = append(u.OutLatch, LatchPair{Work: work, Out: pub})
		c.prog.line("  latch_output(%s); // at deadline", p.Name)
		if c.opts.Instrument.Signals {
			tmpl := EventTemplate{
				Type:      protocol.EvSignal,
				Source:    a.Name() + "." + p.Name,
				Element:   comdes.PortID(a.Name(), "out", p.Name),
				WithValue: true,
			}
			u.SignalEvents[pub] = int(c.prog.eventIndex(tmpl))
		}
	}
	// Kernel-maintained scheduling counters: deadline misses and
	// preemptions live in RAM like any other symbol, so the passive JTAG
	// watch engine and on-target breakpoint conditions observe scheduling
	// incidents at zero instrumentation cost.
	if u.MissSym, err = c.alloc(a.Name()+".__misses", value.Int, ""); err != nil {
		return err
	}
	if u.PreemptSym, err = c.alloc(a.Name()+".__preempts", value.Int, ""); err != nil {
		return err
	}
	c.prog.line("}")
	c.prog.Units = append(c.prog.Units, u)
	return nil
}

// rewiredNetwork clones the network wiring with one connection's source
// replaced. Only the connection list differs; blocks are shared.
func rewiredNetwork(net *comdes.Network, r Rewire) *comdes.Network {
	clone := comdes.NewNetwork(net.Name(), net.Inputs(), net.Outputs())
	for _, b := range net.Blocks() {
		_ = clone.Add(b)
	}
	for i, conn := range net.Connections() {
		from, fport := conn.FromBlock, conn.FromPort
		if i == r.ConnIndex {
			from, fport = r.FromBlock, r.FromPort
		}
		// Faulty rewires may violate typing; that is the point of the
		// experiment, so wiring errors fall back to the original edge.
		if err := clone.Connect(from, fport, conn.ToBlock, conn.ToPort); err != nil {
			_ = clone.Connect(conn.FromBlock, conn.FromPort, conn.ToBlock, conn.ToPort)
		}
	}
	return clone
}

// compileNetwork compiles net's blocks in declaration order. pathPrefix
// scopes symbol names; resolveNetInput supplies symbols for the network's
// own input ports. It returns a map from network output port -> source
// symbol.
func (c *compiler) compileNetwork(pathPrefix string, net *comdes.Network,
	resolveNetInput func(string) (int, error), init, body *[]Instr, line int32) (map[string]int, error) {

	// Allocate every block's output symbols first so any connection
	// (including feedback) resolves.
	blockOut := map[string]map[string]int{}
	for _, b := range net.Blocks() {
		path := pathPrefix + "." + b.Name()
		outs := map[string]int{}
		for _, p := range b.Outputs() {
			sym, err := c.alloc(path+"."+p.Name, p.Kind, "")
			if err != nil {
				return nil, err
			}
			outs[p.Name] = sym
		}
		blockOut[b.Name()] = outs
	}

	// resolveSource finds the symbol feeding a connection source.
	resolveSource := func(conn comdes.Connection) (int, error) {
		if conn.FromBlock == "" {
			return resolveNetInput(conn.FromPort)
		}
		outs, ok := blockOut[conn.FromBlock]
		if !ok {
			return 0, fmt.Errorf("codegen: %s: unknown block %q", pathPrefix, conn.FromBlock)
		}
		sym, ok := outs[conn.FromPort]
		if !ok {
			return 0, fmt.Errorf("codegen: %s: block %s has no output %q", pathPrefix, conn.FromBlock, conn.FromPort)
		}
		return sym, nil
	}

	// Input resolver per block from the connection list.
	blockInputSym := func(blockName, port string) (int, error) {
		for _, conn := range net.Connections() {
			if conn.ToBlock == blockName && conn.ToPort == port {
				return resolveSource(conn)
			}
		}
		return 0, fmt.Errorf("codegen: %s: input %s.%s not driven", pathPrefix, blockName, port)
	}

	for _, b := range net.Blocks() {
		path := pathPrefix + "." + b.Name()
		inResolve := func(port string) (int, error) { return blockInputSym(b.Name(), port) }
		if err := c.compileBlock(path, b, inResolve, blockOut[b.Name()], init, body, line); err != nil {
			return nil, err
		}
	}

	netOuts := map[string]int{}
	for _, conn := range net.Connections() {
		if conn.ToBlock != "" {
			continue
		}
		sym, err := resolveSource(conn)
		if err != nil {
			return nil, err
		}
		netOuts[conn.ToPort] = sym
	}
	return netOuts, nil
}

func (c *compiler) compileBlock(path string, b comdes.Block,
	inResolve func(string) (int, error), outSyms map[string]int,
	init, body *[]Instr, line int32) error {

	switch fb := b.(type) {
	case *comdes.BasicFB:
		return c.compileBasic(path, fb, inResolve, outSyms, body)
	case *comdes.StateMachineFB:
		return c.compileStateMachine(path, fb, inResolve, outSyms, init, body)
	case *comdes.CompositeFB:
		inner := fb.Network()
		netOuts, err := c.compileNetwork(path, inner, inResolve, init, body, line)
		if err != nil {
			return err
		}
		// Copy inner network outputs to the composite's output symbols.
		ln := c.prog.line("  %s: composite outputs", path)
		for _, p := range fb.Outputs() {
			src, ok := netOuts[p.Name]
			if !ok {
				return fmt.Errorf("codegen: composite %s: output %q not driven", path, p.Name)
			}
			*body = append(*body,
				Instr{Op: OpLoad, A: int32(src), Line: ln},
				Instr{Op: OpStore, A: int32(outSyms[p.Name]), Line: ln})
		}
		return nil
	case *comdes.ModalFB:
		return c.compileModal(path, fb, inResolve, outSyms, init, body)
	}
	return fmt.Errorf("codegen: uncompilable block type %T at %s", b, path)
}

func (c *compiler) compileBasic(path string, fb *comdes.BasicFB,
	inResolve func(string) (int, error), outSyms map[string]int, body *[]Instr) error {

	for _, p := range fb.Outputs() {
		node := fb.Formula(p.Name)
		ln := c.prog.line("  %s.%s = %s;", path, p.Name, node.String())
		if err := c.compileExpr(body, node, inResolve, fb.Params(), ln); err != nil {
			return fmt.Errorf("codegen: %s.%s: %w", path, p.Name, err)
		}
		*body = append(*body, Instr{Op: OpStore, A: int32(outSyms[p.Name]), Line: ln})
	}
	return nil
}

// compileExpr emits code leaving the expression value on the stack.
// Identifier resolution order matches the interpreter: parameters shadow
// inputs.
func (c *compiler) compileExpr(code *[]Instr, n expr.Node,
	inResolve func(string) (int, error), params map[string]value.Value, line int32) error {

	switch e := n.(type) {
	case *expr.Lit:
		*code = append(*code, Instr{Op: OpPush, A: c.prog.constIndex(e.Val), Line: line})
		return nil
	case *expr.Ident:
		if params != nil {
			if v, ok := params[e.Name]; ok {
				*code = append(*code, Instr{Op: OpPush, A: c.prog.constIndex(v), Line: line})
				return nil
			}
		}
		sym, err := inResolve(e.Name)
		if err != nil {
			return err
		}
		*code = append(*code, Instr{Op: OpLoad, A: int32(sym), Line: line})
		return nil
	case *expr.Unary:
		if err := c.compileExpr(code, e.X, inResolve, params, line); err != nil {
			return err
		}
		op := OpNeg
		if e.Op == "!" {
			op = OpNot
		}
		*code = append(*code, Instr{Op: op, Line: line})
		return nil
	case *expr.Binary:
		return c.compileBinary(code, e, inResolve, params, line)
	case *expr.Call:
		idx, ok := builtinIndex(e.Fn)
		if !ok {
			return fmt.Errorf("unknown builtin %q", e.Fn)
		}
		for _, a := range e.Args {
			if err := c.compileExpr(code, a, inResolve, params, line); err != nil {
				return err
			}
		}
		*code = append(*code, Instr{Op: OpCall, A: idx, B: int32(len(e.Args)), Line: line})
		return nil
	}
	return fmt.Errorf("uncompilable node %T", n)
}

func (c *compiler) compileBinary(code *[]Instr, e *expr.Binary,
	inResolve func(string) (int, error), params map[string]value.Value, line int32) error {

	// Short-circuit logic via jumps, preserving interpreter semantics
	// (the right operand is not evaluated when the left decides).
	if e.Op == "&&" || e.Op == "||" {
		if err := c.compileExpr(code, e.L, inResolve, params, line); err != nil {
			return err
		}
		jShort := len(*code)
		if e.Op == "&&" {
			*code = append(*code, Instr{Op: OpJZ, Line: line})
		} else {
			*code = append(*code, Instr{Op: OpJNZ, Line: line})
		}
		if err := c.compileExpr(code, e.R, inResolve, params, line); err != nil {
			return err
		}
		jShort2 := len(*code)
		if e.Op == "&&" {
			*code = append(*code, Instr{Op: OpJZ, Line: line})
		} else {
			*code = append(*code, Instr{Op: OpJNZ, Line: line})
		}
		short := value.B(e.Op == "||")
		long := value.B(e.Op == "&&")
		*code = append(*code, Instr{Op: OpPush, A: c.prog.constIndex(long), Line: line})
		jEnd := len(*code)
		*code = append(*code, Instr{Op: OpJmp, Line: line})
		target := int32(len(*code))
		(*code)[jShort].A = target
		(*code)[jShort2].A = target
		*code = append(*code, Instr{Op: OpPush, A: c.prog.constIndex(short), Line: line})
		(*code)[jEnd].A = int32(len(*code))
		return nil
	}

	if err := c.compileExpr(code, e.L, inResolve, params, line); err != nil {
		return err
	}
	if err := c.compileExpr(code, e.R, inResolve, params, line); err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case "+":
		op = OpAdd
	case "-":
		op = OpSub
	case "*":
		op = OpMul
	case "/":
		op = OpDiv
	case "%":
		op = OpMod
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	case "==":
		op = OpEQ
	case "!=":
		op = OpNE
	default:
		return fmt.Errorf("unknown operator %q", e.Op)
	}
	in := Instr{Op: op, Line: line}
	if isArith(op) {
		// Fold the operator byte into the instruction so the VM does not
		// re-derive it on every execution.
		in.A = int32(arithByte(op))
	}
	*code = append(*code, in)
	return nil
}

func (c *compiler) compileStateMachine(path string, fb *comdes.StateMachineFB,
	inResolve func(string) (int, error), outSyms map[string]int, init, body *[]Instr) error {

	stateSym, err := c.alloc(path+".__state", value.Int, comdes.BlockID(path))
	if err != nil {
		return err
	}
	initIdx, _ := fb.StateIndex(fb.Initial())
	lnInit := c.prog.line("  %s.state = %s; // initial", path, fb.Initial())
	*init = append(*init,
		Instr{Op: OpPush, A: c.prog.constIndex(value.I(int64(initIdx))), Line: lnInit},
		Instr{Op: OpStore, A: int32(stateSym), Line: lnInit})
	if c.opts.Instrument.StateEnter {
		tmpl := EventTemplate{
			Type: protocol.EvStateEnter, Source: path, Arg1: fb.Initial(),
			Element: comdes.StateID(path, fb.Initial()),
		}
		*init = append(*init, Instr{Op: OpEmit, A: c.prog.eventIndex(tmpl), Line: lnInit})
	}

	// Zero all outputs (interpreter semantics).
	lnZero := c.prog.line("  %s: outputs = 0;", path)
	for _, p := range fb.Outputs() {
		*body = append(*body,
			Instr{Op: OpPush, A: c.prog.constIndex(value.Zero(p.Kind)), Line: lnZero},
			Instr{Op: OpStore, A: int32(outSyms[p.Name]), Line: lnZero})
	}

	// compileAssigns writes entry/action maps in sorted order (matching
	// the deterministic interpreter iteration via sorted keys).
	compileAssigns := func(assigns map[string]expr.Node, ln int32) error {
		for _, name := range sortedAssignKeys(assigns) {
			if err := c.compileExpr(body, assigns[name], inResolve, nil, ln); err != nil {
				return err
			}
			*body = append(*body, Instr{Op: OpStore, A: int32(outSyms[name]), Line: ln})
		}
		return nil
	}

	var jmpsToDone []int
	var nextStatePatch int = -1
	for _, st := range fb.States() {
		idx, _ := fb.StateIndex(st.Name)
		ln := c.prog.line("  if (%s.state == %s) {", path, st.Name)
		if nextStatePatch >= 0 {
			(*body)[nextStatePatch].A = int32(len(*body))
		}
		*body = append(*body,
			Instr{Op: OpLoad, A: int32(stateSym), Line: ln},
			Instr{Op: OpPush, A: c.prog.constIndex(value.I(int64(idx))), Line: ln},
			Instr{Op: OpEQ, Line: ln})
		nextStatePatch = len(*body)
		*body = append(*body, Instr{Op: OpJZ, Line: ln})

		for _, tr := range fb.Outgoing(st.Name) {
			guard := tr.Guard
			lnT := c.prog.line("    if (%s) { state = %s; } // transition %s", guard.String(), tr.To, tr.Name)
			if err := c.compileExpr(body, guard, inResolve, nil, lnT); err != nil {
				return fmt.Errorf("codegen: %s transition %s: %w", path, tr.Name, err)
			}
			if c.opts.FaultNegateGuard == path+"."+tr.Name {
				*body = append(*body, Instr{Op: OpNot, Line: lnT})
			}
			jSkip := len(*body)
			*body = append(*body, Instr{Op: OpJZ, Line: lnT})
			toIdx, _ := fb.StateIndex(tr.To)
			*body = append(*body,
				Instr{Op: OpPush, A: c.prog.constIndex(value.I(int64(toIdx))), Line: lnT},
				Instr{Op: OpStore, A: int32(stateSym), Line: lnT})
			if c.opts.Instrument.Transitions {
				tmpl := EventTemplate{
					Type: protocol.EvTransition, Source: path, Arg1: tr.From, Arg2: tr.To,
					Element: comdes.TransitionID(path, tr.Name),
				}
				*body = append(*body, Instr{Op: OpEmit, A: c.prog.eventIndex(tmpl), Line: lnT})
			}
			if c.opts.Instrument.StateEnter {
				tmpl := EventTemplate{
					Type: protocol.EvStateEnter, Source: path, Arg1: tr.To,
					Element: comdes.StateID(path, tr.To),
				}
				*body = append(*body, Instr{Op: OpEmit, A: c.prog.eventIndex(tmpl), Line: lnT})
			}
			// Entry of the target state, then transition actions.
			target := fb.States()[toIdx]
			lnE := c.prog.line("    // enter %s", tr.To)
			if err := compileAssigns(target.Entry, lnE); err != nil {
				return err
			}
			if err := compileAssigns(tr.Actions, lnE); err != nil {
				return err
			}
			jmpsToDone = append(jmpsToDone, len(*body))
			*body = append(*body, Instr{Op: OpJmp, Line: lnE})
			(*body)[jSkip].A = int32(len(*body))
		}
		// No transition fired: entry of the current state.
		lnStay := c.prog.line("    // stay in %s", st.Name)
		if err := compileAssigns(st.Entry, lnStay); err != nil {
			return err
		}
		jmpsToDone = append(jmpsToDone, len(*body))
		*body = append(*body, Instr{Op: OpJmp, Line: lnStay})
		c.prog.line("  }")
	}
	done := int32(len(*body))
	if nextStatePatch >= 0 {
		(*body)[nextStatePatch].A = done
	}
	for _, j := range jmpsToDone {
		(*body)[j].A = done
	}
	return nil
}

func sortedAssignKeys(m map[string]expr.Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (c *compiler) compileModal(path string, fb *comdes.ModalFB,
	inResolve func(string) (int, error), outSyms map[string]int, init, body *[]Instr) error {

	selSym, err := inResolve(fb.Selector())
	if err != nil {
		return fmt.Errorf("codegen: modal %s: %w", path, err)
	}

	// Zero outputs (interpreter writes every output each step).
	lnZero := c.prog.line("  %s: outputs = 0;", path)
	for _, p := range fb.Outputs() {
		*body = append(*body,
			Instr{Op: OpPush, A: c.prog.constIndex(value.Zero(p.Kind)), Line: lnZero},
			Instr{Op: OpStore, A: int32(outSyms[p.Name]), Line: lnZero})
	}

	// compileInner compiles one mode's block into the body and copies its
	// outputs into the modal outputs.
	compileInner := func(sub comdes.Block, subPath string) error {
		subOuts := map[string]int{}
		for _, p := range sub.Outputs() {
			sym, err := c.alloc(subPath+"."+p.Name, p.Kind, "")
			if err != nil {
				return err
			}
			subOuts[p.Name] = sym
		}
		// Inner inputs resolve against the modal block's inputs by name
		// (ModalFB.Step passes the whole input map through).
		if err := c.compileBlock(subPath, sub, inResolve, subOuts, init, body, 0); err != nil {
			return err
		}
		ln := c.prog.line("  %s -> %s outputs", subPath, path)
		for _, p := range fb.Outputs() {
			src, ok := subOuts[p.Name]
			if !ok {
				return fmt.Errorf("codegen: modal %s: mode block %s lacks output %q", path, sub.Name(), p.Name)
			}
			*body = append(*body,
				Instr{Op: OpLoad, A: int32(src), Line: ln},
				Instr{Op: OpStore, A: int32(outSyms[p.Name]), Line: ln})
		}
		return nil
	}

	var jmpsToDone []int
	var nextPatch = -1
	for _, md := range fb.Modes() {
		ln := c.prog.line("  if (%s == %d) { // mode", fb.Selector(), md.Selector)
		if nextPatch >= 0 {
			(*body)[nextPatch].A = int32(len(*body))
		}
		*body = append(*body,
			Instr{Op: OpLoad, A: int32(selSym), Line: ln},
			Instr{Op: OpPush, A: c.prog.constIndex(value.I(md.Selector)), Line: ln},
			Instr{Op: OpEQ, Line: ln})
		nextPatch = len(*body)
		*body = append(*body, Instr{Op: OpJZ, Line: ln})
		if err := compileInner(md.Block, fmt.Sprintf("%s.m%d.%s", path, md.Selector, md.Block.Name())); err != nil {
			return err
		}
		jmpsToDone = append(jmpsToDone, len(*body))
		*body = append(*body, Instr{Op: OpJmp, Line: ln})
	}
	if nextPatch >= 0 {
		(*body)[nextPatch].A = int32(len(*body))
	}
	if fb.Fallback() != nil {
		if err := compileInner(fb.Fallback(), path+".fallback."+fb.Fallback().Name()); err != nil {
			return err
		}
	}
	done := int32(len(*body))
	for _, j := range jmpsToDone {
		(*body)[j].A = done
	}
	return nil
}
