package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/comdes"
	"repro/internal/expr"
	"repro/internal/protocol"
	"repro/internal/value"
)

// ---- fixtures ----

func heaterSM(t testing.TB) *comdes.StateMachineFB {
	fb, err := comdes.NewStateMachineFB(comdes.SMConfig{
		Name:    "ctrl",
		Inputs:  []comdes.Port{{Name: "temp", Kind: value.Float}},
		Outputs: []comdes.Port{{Name: "heat", Kind: value.Bool}, {Name: "power", Kind: value.Float}},
		Initial: "Idle",
		States: []comdes.SMStateDef{
			{Name: "Idle", Entry: map[string]string{"heat": "false", "power": "0"}},
			{Name: "Heating", Entry: map[string]string{"heat": "true", "power": "100"}},
		},
		Transitions: []comdes.SMTransitionDef{
			{Name: "cold", From: "Idle", To: "Heating", Guard: "temp < 19"},
			{Name: "warm", From: "Heating", To: "Idle", Guard: "temp > 21"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func heaterActor(t testing.TB) *comdes.Actor {
	net := comdes.NewNetwork("ctrlnet",
		[]comdes.Port{{Name: "temp", Kind: value.Float}},
		[]comdes.Port{{Name: "heat", Kind: value.Bool}, {Name: "power", Kind: value.Float}})
	net.MustAdd(heaterSM(t))
	net.MustAdd(comdes.MustComponent("limit", "lim", map[string]value.Value{"lo": value.F(0), "hi": value.F(80)}))
	net.MustConnect("", "temp", "ctrl", "temp").
		MustConnect("ctrl", "heat", "", "heat").
		MustConnect("ctrl", "power", "lim", "in").
		MustConnect("lim", "out", "", "power")
	a, err := comdes.NewActor("heater", net, comdes.TaskSpec{PeriodNs: 10_000_000, DeadlineNs: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func singleActorSystem(t testing.TB, a *comdes.Actor) *comdes.System {
	sys := comdes.NewSystem("test_" + a.Name())
	sys.MustAddActor(a)
	return sys
}

// cycleUnit simulates the board's task lifecycle for one actor on a bus:
// write env inputs, latch, execute body, latch outputs, read outputs.
func cycleUnit(t testing.TB, p *Program, u *Unit, bus Bus, env map[string]value.Value) (map[string]value.Value, ExecResult) {
	t.Helper()
	for port, v := range env {
		sym, ok := u.InputSyms[port]
		if !ok {
			t.Fatalf("no input symbol for %q", port)
		}
		if err := bus.StoreSym(sym, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, lp := range u.InLatch {
		v, err := bus.LoadSym(lp.Work)
		if err != nil {
			t.Fatal(err)
		}
		if err := bus.StoreSym(lp.Out, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Exec(p, u.Body, bus)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	for _, lp := range u.OutLatch {
		v, err := bus.LoadSym(lp.Work)
		if err != nil {
			t.Fatal(err)
		}
		if err := bus.StoreSym(lp.Out, v); err != nil {
			t.Fatal(err)
		}
	}
	out := map[string]value.Value{}
	for port, sym := range u.OutputSyms {
		v, err := bus.LoadSym(sym)
		if err != nil {
			t.Fatal(err)
		}
		out[port] = v
	}
	return out, res
}

func initUnit(t testing.TB, p *Program, u *Unit, bus Bus) {
	t.Helper()
	if _, err := Exec(p, u.Init, bus); err != nil {
		t.Fatal(err)
	}
}

// assertMatchesInterpreter drives the compiled actor and the reference
// interpreter through the same input sequence and requires identical
// outputs every cycle.
func assertMatchesInterpreter(t *testing.T, build func(testing.TB) *comdes.Actor, inputs []map[string]value.Value) {
	t.Helper()
	compiledActor := build(t)
	sys := singleActorSystem(t, compiledActor)
	p, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := p.Unit(compiledActor.Name())
	bus := NewMapBus(p.Symbols)
	initUnit(t, p, u, bus)

	refActor := build(t)
	refSys := singleActorSystem(t, refActor)
	it := comdes.NewInterpreter(refSys)

	for i, env := range inputs {
		got, _ := cycleUnit(t, p, u, bus, env)
		for k, v := range env {
			it.Env[refActor.Name()+"."+k] = v
		}
		want, err := it.StepActor(refActor.Name())
		if err != nil {
			t.Fatalf("cycle %d: interpreter: %v", i, err)
		}
		for port, w := range want {
			g := got[port]
			if !value.Equal(g, w) {
				t.Fatalf("cycle %d output %s: compiled %v != interpreted %v", i, port, g, w)
			}
		}
	}
}

// ---- tests ----

func TestCompileHeaterMatchesInterpreter(t *testing.T) {
	temps := []float64{20, 18, 17, 19.5, 22, 25, 20, 15, 21, 23, 18.9, 19, 21.1}
	var inputs []map[string]value.Value
	for _, tv := range temps {
		inputs = append(inputs, map[string]value.Value{"temp": value.F(tv)})
	}
	assertMatchesInterpreter(t, heaterActor, inputs)
}

func TestCompileFeedbackCounter(t *testing.T) {
	build := func(tb testing.TB) *comdes.Actor {
		net := comdes.NewNetwork("n", nil, []comdes.Port{{Name: "count", Kind: value.Float}})
		net.MustAdd(comdes.MustComponent("const", "one", map[string]value.Value{"value": value.F(1)}))
		net.MustAdd(comdes.MustComponent("sum", "acc", nil))
		net.MustConnect("one", "out", "acc", "a").
			MustConnect("acc", "out", "acc", "b").
			MustConnect("acc", "out", "", "count")
		a, err := comdes.NewActor("counter", net, comdes.TaskSpec{PeriodNs: 1000, DeadlineNs: 1000})
		if err != nil {
			tb.Fatal(err)
		}
		return a
	}
	inputs := make([]map[string]value.Value, 6)
	assertMatchesInterpreter(t, build, inputs)
}

func TestCompileModalMatchesInterpreter(t *testing.T) {
	build := func(tb testing.TB) *comdes.Actor {
		low := comdes.MustComponent("gain", "low", map[string]value.Value{"k": value.F(1)})
		high := comdes.MustComponent("gain", "high", map[string]value.Value{"k": value.F(10)})
		fallback := comdes.MustComponent("const", "dflt", map[string]value.Value{"value": value.F(-1)})
		modal, err := comdes.NewModalFB("sel", "mode",
			[]comdes.Port{{Name: "in", Kind: value.Float}, {Name: "mode", Kind: value.Int}},
			[]comdes.Port{{Name: "out", Kind: value.Float}},
			[]comdes.ModalMode{{Selector: 1, Block: low}, {Selector: 2, Block: high}}, fallback)
		if err != nil {
			tb.Fatal(err)
		}
		net := comdes.NewNetwork("n",
			[]comdes.Port{{Name: "x", Kind: value.Float}, {Name: "mode", Kind: value.Int}},
			[]comdes.Port{{Name: "y", Kind: value.Float}})
		net.MustAdd(modal)
		net.MustConnect("", "x", "sel", "in").
			MustConnect("", "mode", "sel", "mode").
			MustConnect("sel", "out", "", "y")
		a, err := comdes.NewActor("mixer", net, comdes.TaskSpec{PeriodNs: 1000, DeadlineNs: 500})
		if err != nil {
			tb.Fatal(err)
		}
		return a
	}
	var inputs []map[string]value.Value
	for _, m := range []int64{1, 2, 7, 2, 1, 0} {
		inputs = append(inputs, map[string]value.Value{"x": value.F(4), "mode": value.I(m)})
	}
	assertMatchesInterpreter(t, build, inputs)
}

func TestCompileCompositeMatchesInterpreter(t *testing.T) {
	build := func(tb testing.TB) *comdes.Actor {
		inner := comdes.NewNetwork("pipe",
			[]comdes.Port{{Name: "in", Kind: value.Float}},
			[]comdes.Port{{Name: "out", Kind: value.Float}})
		inner.MustAdd(comdes.MustComponent("gain", "g", map[string]value.Value{"k": value.F(2)}))
		inner.MustAdd(comdes.MustComponent("limit", "lim", map[string]value.Value{"lo": value.F(0), "hi": value.F(50)}))
		inner.MustConnect("", "in", "g", "in").
			MustConnect("g", "out", "lim", "in").
			MustConnect("lim", "out", "", "out")
		comp, err := comdes.NewCompositeFB(inner)
		if err != nil {
			tb.Fatal(err)
		}
		net := comdes.NewNetwork("n",
			[]comdes.Port{{Name: "x", Kind: value.Float}},
			[]comdes.Port{{Name: "y", Kind: value.Float}})
		net.MustAdd(comp)
		net.MustAdd(comdes.MustComponent("gain", "post", map[string]value.Value{"k": value.F(3)}))
		net.MustConnect("", "x", "pipe", "in").
			MustConnect("pipe", "out", "post", "in").
			MustConnect("post", "out", "", "y")
		a, err := comdes.NewActor("outer", net, comdes.TaskSpec{PeriodNs: 1000, DeadlineNs: 500})
		if err != nil {
			tb.Fatal(err)
		}
		return a
	}
	var inputs []map[string]value.Value
	for _, x := range []float64{1, 10, 40, -3, 0.5} {
		inputs = append(inputs, map[string]value.Value{"x": value.F(x)})
	}
	assertMatchesInterpreter(t, build, inputs)
}

func TestInstrumentationEmitsEvents(t *testing.T) {
	sys := singleActorSystem(t, heaterActor(t))
	p, err := Compile(sys, Options{Instrument: Instrument{StateEnter: true, Transitions: true, Signals: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrumented {
		t.Error("Instrumented flag not set")
	}
	u := p.Unit("heater")
	bus := NewMapBus(p.Symbols)
	// Boot: initial state event.
	res, err := Exec(p, u.Init, bus)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emits) != 1 || p.Events[res.Emits[0].Template].Type != protocol.EvStateEnter {
		t.Fatalf("init emits = %v", res.Emits)
	}
	if p.Events[res.Emits[0].Template].Arg1 != "Idle" {
		t.Error("initial state event wrong")
	}
	// Cold input: transition + state-enter.
	_, res = cycleUnit(t, p, u, bus, map[string]value.Value{"temp": value.F(10)})
	var kinds []protocol.EventType
	for _, e := range res.Emits {
		kinds = append(kinds, p.Events[e.Template].Type)
	}
	if len(kinds) != 2 || kinds[0] != protocol.EvTransition || kinds[1] != protocol.EvStateEnter {
		t.Fatalf("transition emits = %v", kinds)
	}
	tr := p.Events[res.Emits[0].Template]
	if tr.Arg1 != "Idle" || tr.Arg2 != "Heating" || tr.Source != "heater.ctrl" {
		t.Errorf("transition template = %+v", tr)
	}
	// No transition: no emits.
	_, res = cycleUnit(t, p, u, bus, map[string]value.Value{"temp": value.F(20)})
	if len(res.Emits) != 0 {
		t.Errorf("steady-state emits = %v", res.Emits)
	}
	// Signal templates registered for the two outputs.
	if len(u.SignalEvents) != 2 {
		t.Errorf("SignalEvents = %v", u.SignalEvents)
	}
}

func TestInstrumentationOverheadCycles(t *testing.T) {
	sys1 := singleActorSystem(t, heaterActor(t))
	clean, err := Compile(sys1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys2 := singleActorSystem(t, heaterActor(t))
	instr, err := Compile(sys2, Options{Instrument: Instrument{StateEnter: true, Transitions: true}})
	if err != nil {
		t.Fatal(err)
	}
	busC, busI := NewMapBus(clean.Symbols), NewMapBus(instr.Symbols)
	uc, ui := clean.Unit("heater"), instr.Unit("heater")
	initUnit(t, clean, uc, busC)
	initUnit(t, instr, ui, busI)
	// Drive a transition so the instrumented path executes emits.
	_, rc := cycleUnit(t, clean, uc, busC, map[string]value.Value{"temp": value.F(10)})
	_, ri := cycleUnit(t, instr, ui, busI, map[string]value.Value{"temp": value.F(10)})
	if ri.Cycles <= rc.Cycles {
		t.Errorf("instrumented (%d) must cost more cycles than clean (%d)", ri.Cycles, rc.Cycles)
	}
	if ri.Cycles-rc.Cycles < 2*EmitCycles {
		t.Errorf("overhead %d below 2 emits", ri.Cycles-rc.Cycles)
	}
}

func TestFaultNegateGuard(t *testing.T) {
	sys := singleActorSystem(t, heaterActor(t))
	p, err := Compile(sys, Options{FaultNegateGuard: "heater.ctrl.cold"})
	if err != nil {
		t.Fatal(err)
	}
	u := p.Unit("heater")
	bus := NewMapBus(p.Symbols)
	initUnit(t, p, u, bus)
	// With the guard negated, a WARM input triggers Heating.
	out, _ := cycleUnit(t, p, u, bus, map[string]value.Value{"temp": value.F(20)})
	if !out["heat"].Bool() {
		t.Error("negated guard should fire on warm input")
	}
}

func TestFaultRewire(t *testing.T) {
	// Rewire connection 2 (ctrl.power -> lim.in) to take the raw temp
	// input instead: the limiter then clamps the temperature, so power is
	// 10 instead of 80 on a cold cycle.
	sys := singleActorSystem(t, heaterActor(t))
	p, err := Compile(sys, Options{FaultRewire: &Rewire{
		Actor: "heater", ConnIndex: 2, FromBlock: "", FromPort: "temp",
	}})
	if err != nil {
		t.Fatal(err)
	}
	u := p.Unit("heater")
	bus := NewMapBus(p.Symbols)
	initUnit(t, p, u, bus)
	out, _ := cycleUnit(t, p, u, bus, map[string]value.Value{"temp": value.F(10)})
	if out["power"].Float() == 80 {
		t.Error("rewire had no effect")
	}
	// An invalid rewire falls back to the original wiring.
	sys2 := singleActorSystem(t, heaterActor(t))
	p2, err := Compile(sys2, Options{FaultRewire: &Rewire{
		Actor: "heater", ConnIndex: 2, FromBlock: "ghost", FromPort: "x",
	}})
	if err != nil {
		t.Fatal(err)
	}
	u2 := p2.Unit("heater")
	bus2 := NewMapBus(p2.Symbols)
	initUnit(t, p2, u2, bus2)
	out2, _ := cycleUnit(t, p2, u2, bus2, map[string]value.Value{"temp": value.F(10)})
	if out2["power"].Float() != 80 {
		t.Errorf("fallback wiring broken: %v", out2["power"])
	}
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	i1, err := st.Alloc("a", value.Float, "elem1")
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := st.Alloc("b", value.Bool, "")
	if _, err := st.Alloc("a", value.Float, ""); err == nil {
		t.Error("duplicate symbol should fail")
	}
	if _, err := st.Alloc("s", value.String, ""); err == nil {
		t.Error("string symbol should fail")
	}
	if st.Sym(i1).Addr != 0 || st.Sym(i2).Addr != 8 {
		t.Error("address allocation wrong")
	}
	if st.RAMSize() != 16 || st.Len() != 2 {
		t.Error("table size wrong")
	}
	if idx, ok := st.Index("b"); !ok || idx != i2 {
		t.Error("Index broken")
	}
	if len(st.All()) != 2 {
		t.Error("All broken")
	}
}

func TestListingAndDisassembly(t *testing.T) {
	sys := singleActorSystem(t, heaterActor(t))
	p, err := Compile(sys, Options{Instrument: Instrument{Transitions: true}})
	if err != nil {
		t.Fatal(err)
	}
	src := strings.Join(p.Source, "\n")
	for _, want := range []string{"task_heater", "state == Idle", "transition cold", "clamp"} {
		if !strings.Contains(src, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	u := p.Unit("heater")
	// Every instruction's line must be valid.
	for _, in := range append(append([]Instr{}, u.Init...), u.Body...) {
		if int(in.Line) >= len(p.Source) {
			t.Fatalf("instruction line %d out of range", in.Line)
		}
	}
	dis := strings.Join(p.Disassemble(u.Body), "\n")
	for _, want := range []string{"LOAD", "STORE", "JZ", "EMIT", "PUSH"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	if p.Unit("ghost") != nil {
		t.Error("Unit lookup broken")
	}
}

func TestOpStringAndCycles(t *testing.T) {
	for op := OpNop; op <= OpHalt; op++ {
		if strings.Contains(op.String(), "Op(") {
			t.Errorf("op %d has no name", op)
		}
		if op.Cycles() == 0 {
			t.Errorf("op %v has zero cost", op)
		}
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("unknown op name")
	}
	if OpEmit.Cycles() != EmitCycles {
		t.Error("emit cost wrong")
	}
}

func TestVMErrors(t *testing.T) {
	p := &Program{Symbols: NewSymbolTable()}
	si, _ := p.Symbols.Alloc("x", value.Float, "")
	bus := NewMapBus(p.Symbols)
	// Division by zero.
	code := []Instr{
		{Op: OpPush, A: p.constIndex(value.F(1))},
		{Op: OpPush, A: p.constIndex(value.F(0))},
		{Op: OpDiv},
	}
	if _, err := Exec(p, code, bus); err == nil {
		t.Error("div by zero should fail")
	}
	// Bad symbol index.
	if _, err := Exec(p, []Instr{{Op: OpLoad, A: 99}}, bus); err == nil {
		t.Error("bad load should fail")
	}
	if _, err := Exec(p, []Instr{{Op: OpPush, A: p.constIndex(value.F(1))}, {Op: OpStore, A: 99}}, bus); err == nil {
		t.Error("bad store should fail")
	}
	// Infinite loop hits the step limit.
	if _, err := Exec(p, []Instr{{Op: OpJmp, A: 0}}, bus); err == nil {
		t.Error("step limit should trip")
	}
	// Unknown opcode.
	if _, err := Exec(p, []Instr{{Op: Op(99)}}, bus); err == nil {
		t.Error("unknown op should fail")
	}
	// Halt stops cleanly.
	res, err := Exec(p, []Instr{{Op: OpHalt}, {Op: OpLoad, A: 99}}, bus)
	if err != nil || res.Steps != 1 {
		t.Error("halt broken")
	}
	// Neg of bool fails.
	code = []Instr{{Op: OpPush, A: p.constIndex(value.B(true))}, {Op: OpNeg}}
	if _, err := Exec(p, code, bus); err == nil {
		t.Error("neg bool should fail")
	}
	// Compare string/int fails.
	code = []Instr{
		{Op: OpPush, A: p.constIndex(value.S("a"))},
		{Op: OpPush, A: p.constIndex(value.I(1))},
		{Op: OpLT},
	}
	if _, err := Exec(p, code, bus); err == nil {
		t.Error("bad compare should fail")
	}
	// Builtin error propagates.
	sq, _ := builtinIndex("sqrt")
	code = []Instr{{Op: OpPush, A: p.constIndex(value.F(-1))}, {Op: OpCall, A: sq, B: 1}}
	if _, err := Exec(p, code, bus); err == nil {
		t.Error("sqrt(-1) should fail")
	}
	_ = si
}

// Property: compiled expression evaluation equals interpreted evaluation
// for random expressions over two variables.
func TestQuickCompiledExprMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ops := []string{"+", "-", "*", "&&", "||", "<", ">", "==", "<=", ">=", "!="}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth == 0 || r.Intn(3) == 0 {
			switch r.Intn(4) {
			case 0:
				return value.F(float64(r.Intn(20)) / 2).String()
			case 1:
				return "a"
			case 2:
				return "b"
			default:
				return []string{"true", "false"}[r.Intn(2)]
			}
		}
		op := ops[r.Intn(len(ops))]
		return "(" + gen(depth-1) + " " + op + " " + gen(depth-1) + ")"
	}
	for i := 0; i < 400; i++ {
		src := gen(4)
		node, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		env := expr.MapEnv{"a": value.F(float64(r.Intn(10)) - 5), "b": value.F(float64(r.Intn(10)) - 5)}
		want, errWant := expr.Eval(node, env)

		p := &Program{Symbols: NewSymbolTable()}
		sa, _ := p.Symbols.Alloc("a", value.Float, "")
		sb, _ := p.Symbols.Alloc("b", value.Float, "")
		sout, _ := p.Symbols.Alloc("out", value.Float, "")
		c := &compiler{prog: p}
		var code []Instr
		resolve := func(name string) (int, error) {
			if name == "a" {
				return sa, nil
			}
			return sb, nil
		}
		if err := c.compileExpr(&code, node, resolve, nil, 0); err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		code = append(code, Instr{Op: OpStore, A: int32(sout)})
		bus := NewMapBus(p.Symbols)
		_ = bus.StoreSym(sa, env["a"])
		_ = bus.StoreSym(sb, env["b"])
		_, errGot := Exec(p, code, bus)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("%q: interp err=%v, compiled err=%v", src, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		got, _ := bus.LoadSym(sout)
		wantF, _ := value.Convert(want, value.Float)
		if got.Float() != wantF.Float() {
			t.Fatalf("%q: compiled %v != interpreted %v", src, got, want)
		}
	}
}

// hookRecorder is a BreakHook that trips on one symbol index and records
// every check site it was consulted at.
type hookRecorder struct {
	tripIdx int
	stores  []int
	emits   int
}

func (h *hookRecorder) CheckStore(idx int, v value.Value) (bool, uint64) {
	h.stores = append(h.stores, idx)
	return idx == h.tripIdx, BreakCheckCycles
}

func (h *hookRecorder) CheckEmit(ref EmitRef) (bool, uint64) {
	h.emits++
	return false, BreakCheckCycles
}

// TestBreakHookHaltsAndResumes pins the VM half of the target-resident
// agent: the hook runs at every store site, a hit halts the machine at
// that instruction with the check cycles charged, and a later Run
// continues from the instruction after the hit to normal completion.
func TestBreakHookHaltsAndResumes(t *testing.T) {
	sys := singleActorSystem(t, heaterActor(t))
	prog, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := prog.Unit("heater")
	bus := NewMapBus(prog.Symbols)
	if _, err := Exec(prog, u.Init, bus); err != nil {
		t.Fatal(err)
	}
	_ = bus.StoreSym(u.InputSyms["temp"], value.F(10)) // cold: transition fires
	for _, lp := range u.InLatch {
		v, _ := bus.LoadSym(lp.Work)
		_ = bus.StoreSym(lp.Out, v)
	}
	stateIdx, ok := prog.Symbols.Index("heater.ctrl.__state")
	if !ok {
		t.Fatal("state symbol missing")
	}

	// Baseline run without a hook for the cycle reference.
	ref := NewMapBus(prog.Symbols)
	copy(ref.Vals, bus.Vals)
	base, err := Exec(prog, u.Body, ref)
	if err != nil {
		t.Fatal(err)
	}
	if base.BreakPC != -1 {
		t.Fatalf("hookless run reports BreakPC %d", base.BreakPC)
	}

	hook := &hookRecorder{tripIdx: stateIdx}
	m := NewMachine(prog, u.Body, bus)
	m.Hook = hook
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BreakPC < 0 {
		t.Fatal("hook hit did not halt the run")
	}
	if u.Body[res.BreakPC].Op != OpStore || int(u.Body[res.BreakPC].A) != stateIdx {
		t.Fatalf("halted at pc %d (%v), want the state store", res.BreakPC, u.Body[res.BreakPC].Op)
	}
	if m.PC != res.BreakPC+1 {
		t.Fatalf("PC = %d after hit at %d, want the next instruction", m.PC, res.BreakPC)
	}
	if len(hook.stores) == 0 || hook.stores[len(hook.stores)-1] != stateIdx {
		t.Fatalf("store sites checked: %v", hook.stores)
	}
	checks := uint64(len(hook.stores)+hook.emits) * BreakCheckCycles
	if res.CheckCycles != checks {
		t.Errorf("CheckCycles = %d, want %d", res.CheckCycles, checks)
	}

	// Resume: the same machine runs to completion and the total work
	// matches the hookless run plus the check overhead.
	hook.tripIdx = -1
	res, err = m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BreakPC != -1 {
		t.Fatalf("resumed run halted again at %d", res.BreakPC)
	}
	if !m.Done() {
		t.Fatal("resumed run did not finish")
	}
	finalChecks := uint64(len(hook.stores)+hook.emits) * BreakCheckCycles
	if res.Cycles != base.Cycles+finalChecks {
		t.Errorf("cycles = %d, want base %d + checks %d", res.Cycles, base.Cycles, finalChecks)
	}
	// The split runs computed the same state as the uninterrupted run.
	for i, v := range bus.Vals {
		if !value.Equal(v, ref.Vals[i]) {
			t.Errorf("symbol %s diverged: %v vs %v", prog.Symbols.Sym(i).Name, v, ref.Vals[i])
		}
	}
}
