package codegen

import (
	"encoding/json"
	"testing"

	"repro/internal/value"
)

// TestMachineSnapshotRestore freezes a machine mid-run — operand stack
// populated, emits pending — pushes the state through JSON, restores it
// onto a fresh machine, and requires the completed run to match an
// uninterrupted one exactly.
func TestMachineSnapshotRestore(t *testing.T) {
	st := NewSymbolTable()
	xi, _ := st.Alloc("x", value.Int, "")
	yi, _ := st.Alloc("y", value.Int, "")
	p := &Program{Name: "p", Symbols: st}
	tmpl := p.eventIndex(EventTemplate{Source: "sig", WithValue: true})
	// x = 2; emit(x); y = x*3 + 4
	code := []Instr{
		{Op: OpPush, A: p.constIndex(value.I(2))},
		{Op: OpStore, A: int32(xi)},
		{Op: OpLoad, A: int32(xi)},
		{Op: OpEmit, A: tmpl, B: 1},
		{Op: OpLoad, A: int32(xi)},
		{Op: OpPush, A: p.constIndex(value.I(3))},
		{Op: OpMul},
		{Op: OpPush, A: p.constIndex(value.I(4))},
		{Op: OpAdd},
		{Op: OpStore, A: int32(yi)},
	}

	run := func(m *Machine) ExecResult {
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	control := NewMachine(p, code, NewMapBus(st))
	want := run(control)

	bus := NewMapBus(st)
	m := NewMachine(p, code, bus)
	// Step to the middle of the arithmetic (stack holds x*3, next push 4).
	for i := 0; i < 7; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var snap2 MachineState
	if err := json.Unmarshal(blob, &snap2); err != nil {
		t.Fatal(err)
	}

	// Trash the original, restore onto a fresh machine over a bus seeded
	// with the snapshot-time RAM (x already stored).
	fresh := NewMachine(p, code, bus)
	if err := fresh.Restore(snap2); err != nil {
		t.Fatal(err)
	}
	got := run(fresh)
	if got.Cycles != want.Cycles || got.Steps != want.Steps || len(got.Emits) != len(want.Emits) {
		t.Fatalf("restored run diverged: %+v vs %+v", got, want)
	}
	y, _ := bus.LoadSym(yi)
	if y.Int() != 10 {
		t.Fatalf("y = %v, want 10", y)
	}

	// The snapshot must not alias the machine: running the original after
	// snapshotting leaves the captured stack intact.
	if len(snap2.Stack) != 1 {
		t.Fatalf("expected one stack slot mid-arithmetic, got %d", len(snap2.Stack))
	}
	v, err := value.Decode(snap2.Stack[0])
	if err != nil || v.Int() != 6 {
		t.Fatalf("captured stack slot = %v (%v), want 6", v, err)
	}
}
