package codegen

// Peephole fusion for the threaded backend. The compiler's dominant
// output shapes — basic-block assignments (Load sym; Push const; Arith;
// Store sym), state-dispatch guards (Load sym; Push const; Cmp; JZ),
// zero/constant initialisation (Push const; Store sym) and latch-style
// copies (Load sym; Store sym) — each become one superinstruction: one
// closure dispatch and one batched Steps/Cycles update instead of two to
// four, with all intermediate stack traffic eliminated.
//
// Equivalence argument: every fused pattern has net-zero stack effect on
// its success path AND on every error exit (the interpreter pops operands
// before an Arith/Compare/Store/Load error surfaces), so the fused form
// may keep intermediates in locals. Error exits charge exactly the
// instructions the interpreter would have executed, leave the PC at the
// failing instruction, and reproduce its error (including the
// "codegen: pc %d" wrap). The runner de-fuses whenever a break hook is
// armed or a budget/step-limit boundary could land strictly inside, so
// preemption and halt-at-instruction semantics never observe a fused
// region.

import (
	"fmt"

	"repro/internal/value"
)

func isArith(o Op) bool { return o >= OpAdd && o <= OpMod }
func isCmp(o Op) bool   { return o >= OpLT && o <= OpNE }

// fuse scans code and attaches superinstruction closures to every pc where
// a pattern begins. Overlapping matches are fine: a jump into the middle
// of a fused region enters at that pc's own single-step node.
func fuse(p *Program, code []Instr, nodes []tnode) {
	next := func(pc int) *tnode {
		if pc < 0 || pc >= len(code) {
			return nil
		}
		return &nodes[pc]
	}
	for pc := 0; pc+1 < len(code); pc++ {
		if pc+3 < len(code) &&
			code[pc].Op == OpLoad && code[pc+1].Op == OpPush &&
			isArith(code[pc+2].Op) && code[pc+3].Op == OpStore {
			fuseLoadPushArithStore(p, code, pc, next, &nodes[pc])
			continue
		}
		if pc+3 < len(code) &&
			code[pc].Op == OpLoad && code[pc+1].Op == OpPush &&
			isCmp(code[pc+2].Op) && code[pc+3].Op == OpJZ {
			fuseLoadPushCmpJZ(p, code, pc, next, &nodes[pc])
			continue
		}
		if code[pc].Op == OpPush && code[pc+1].Op == OpStore {
			fusePushStore(p, code, pc, next, &nodes[pc])
			continue
		}
		if code[pc].Op == OpLoad && code[pc+1].Op == OpStore {
			fuseLoadStore(code, pc, next, &nodes[pc])
		}
	}
}

// fuseLoadPushArithStore: dst = src <op> const, the basic-block assignment
// shape. 4 instructions, one dispatch, no stack traffic.
func fuseLoadPushArithStore(p *Program, code []Instr, pc int, next func(int) *tnode, n *tnode) {
	src := int(code[pc].A)
	cv := p.Consts[code[pc+1].A]
	aop := code[pc+2].Op
	ab := byte(code[pc+2].A)
	if ab == 0 {
		ab = arithByte(aop)
	}
	dst := int(code[pc+3].A)
	acyc := aop.Cycles()
	after := next(pc + 4)
	n.fusedLen = 4
	n.fusedButLast = 4 + 1 + acyc
	total := n.fusedButLast + 4
	n.fused = func(m *Machine) (*tnode, error) {
		av, err := m.Bus.LoadSym(src)
		if err != nil {
			m.Res.Steps++
			m.Res.Cycles += 4
			return nil, err
		}
		r, err := value.Arith(ab, av, cv)
		if err != nil {
			m.Res.Steps += 3
			m.Res.Cycles += 5 + acyc
			m.PC = pc + 2
			return nil, fmt.Errorf("codegen: pc %d: %w", pc+2, err)
		}
		if err := m.Bus.StoreSym(dst, r); err != nil {
			m.Res.Steps += 4
			m.Res.Cycles += total
			m.PC = pc + 3
			return nil, err
		}
		m.Res.Steps += 4
		m.Res.Cycles += total
		m.PC = pc + 4
		return after, nil
	}
}

// fuseLoadPushCmpJZ: the state/guard dispatch shape — compare a symbol
// against a constant and branch.
func fuseLoadPushCmpJZ(p *Program, code []Instr, pc int, next func(int) *tnode, n *tnode) {
	src := int(code[pc].A)
	cv := p.Consts[code[pc+1].A]
	cop := code[pc+2].Op
	jpc := int(code[pc+3].A)
	jn := next(jpc)
	after := next(pc + 4)
	n.fusedLen = 4
	n.fusedButLast = 4 + 1 + 1
	total := n.fusedButLast + 2
	n.fused = func(m *Machine) (*tnode, error) {
		av, err := m.Bus.LoadSym(src)
		if err != nil {
			m.Res.Steps++
			m.Res.Cycles += 4
			return nil, err
		}
		var r bool
		switch cop {
		case OpEQ:
			r = value.Equal(av, cv)
		case OpNE:
			r = !value.Equal(av, cv)
		default:
			c, err := value.Compare(av, cv)
			if err != nil {
				m.Res.Steps += 3
				m.Res.Cycles += 6
				m.PC = pc + 2
				return nil, fmt.Errorf("codegen: pc %d: %w", pc+2, err)
			}
			switch cop {
			case OpLT:
				r = c < 0
			case OpLE:
				r = c <= 0
			case OpGT:
				r = c > 0
			default:
				r = c >= 0
			}
		}
		m.Res.Steps += 4
		m.Res.Cycles += total
		if !r {
			m.PC = jpc
			return jn, nil
		}
		m.PC = pc + 4
		return after, nil
	}
}

// fusePushStore: dst = const, the initialisation/zeroing shape.
func fusePushStore(p *Program, code []Instr, pc int, next func(int) *tnode, n *tnode) {
	cv := p.Consts[code[pc].A]
	dst := int(code[pc+1].A)
	after := next(pc + 2)
	n.fusedLen = 2
	n.fusedButLast = 1
	n.fused = func(m *Machine) (*tnode, error) {
		if err := m.Bus.StoreSym(dst, cv); err != nil {
			m.Res.Steps += 2
			m.Res.Cycles += 5
			m.PC = pc + 1
			return nil, err
		}
		m.Res.Steps += 2
		m.Res.Cycles += 5
		m.PC = pc + 2
		return after, nil
	}
}

// fuseLoadStore: dst = src, the copy shape of composite outputs and modal
// passthroughs.
func fuseLoadStore(code []Instr, pc int, next func(int) *tnode, n *tnode) {
	src := int(code[pc].A)
	dst := int(code[pc+1].A)
	after := next(pc + 2)
	n.fusedLen = 2
	n.fusedButLast = 4
	n.fused = func(m *Machine) (*tnode, error) {
		v, err := m.Bus.LoadSym(src)
		if err != nil {
			m.Res.Steps++
			m.Res.Cycles += 4
			return nil, err
		}
		if err := m.Bus.StoreSym(dst, v); err != nil {
			m.Res.Steps += 2
			m.Res.Cycles += 8
			m.PC = pc + 1
			return nil, err
		}
		m.Res.Steps += 2
		m.Res.Cycles += 8
		m.PC = pc + 2
		return after, nil
	}
}
