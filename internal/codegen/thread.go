package codegen

// Direct-threaded dispatch: an ahead-of-time backend that compiles a
// []Instr body into a chain of Go closures, one per pc. Each closure
// executes its instruction and returns a pointer to the next node, so the
// hot loop is an indirect call per instruction instead of the Step
// switch's fetch/decode. The semantic contract is bit-identity with the
// interpreter: cycle accounting (Op.Cycles, BreakCheckCycles, CheckCycles),
// RunBudget's instruction-boundary preemption, BreakHook's
// halt-at-the-triggering-instruction behavior, runtime error text and the
// PC/stack state they leave behind are all exactly those of Machine.Step.
// Because the two backends share every piece of machine state, execution
// may switch between them at any instruction boundary — Snapshot/Restore,
// the baseline debugger's single-Step, and slice resumption all compose.

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// tnode is one compiled instruction site. step executes exactly one
// instruction. fused, when non-nil, executes the superinstruction starting
// here (fusedLen instructions); the runner uses it only when no budget
// boundary, armed break hook, or step limit could land strictly inside —
// otherwise the site de-fuses to single-step dispatch.
type tnode struct {
	step  func(m *Machine) (*tnode, error)
	fused func(m *Machine) (*tnode, error)

	// fusedLen is the instruction count of the fused form; fusedButLast is
	// the cycle cost of all but its last instruction. The interpreter stops
	// a budgeted run after the first instruction that reaches the budget,
	// so the fused form is only equivalent when the remaining budget
	// exceeds fusedButLast (every interior boundary stays under budget).
	fusedLen     uint64
	fusedButLast uint64
}

// Threaded is the immutable direct-threaded compilation of one code
// sequence. It captures no machine state, so a single value is shared by
// every Machine running the body — the farm's one-compile-per-model cache
// carries it across sessions for free.
type Threaded struct {
	code  []Instr
	nodes []tnode
	emits int // OpEmit count: the machine pre-sizes its emit buffer to this
}

// matches reports whether t was built for exactly this code slice.
func (t *Threaded) matches(code []Instr) bool {
	return len(code) == len(t.code) && (len(code) == 0 || &code[0] == &t.code[0])
}

// Len returns the instruction count of the threaded code.
func (t *Threaded) Len() int { return len(t.nodes) }

// Thread compiles code into its direct-threaded form, or nil when the
// sequence cannot be threaded (unknown opcode, jump target outside
// [0, len]) — callers then stay on the interpreter, which produces the
// canonical diagnostics for such code.
func Thread(p *Program, code []Instr) *Threaded {
	t := &Threaded{code: code, nodes: make([]tnode, len(code))}
	// next resolves the node after pc (nil when execution leaves the code).
	next := func(pc int) *tnode {
		if pc < 0 || pc >= len(code) {
			return nil
		}
		return &t.nodes[pc]
	}
	for pc, in := range code {
		if in.Op > OpHalt {
			return nil
		}
		switch in.Op {
		case OpJmp, OpJZ, OpJNZ:
			if in.A < 0 || int(in.A) > len(code) {
				return nil
			}
		case OpPush:
			if in.A < 0 || int(in.A) >= len(p.Consts) {
				return nil
			}
		case OpCall:
			if in.A < 0 || int(in.A) >= len(builtinNames) || in.B < 0 {
				return nil
			}
		case OpEmit:
			t.emits++
		}
		t.nodes[pc].step = stepNode(p, code[pc], pc, next(pc+1), next)
	}
	fuse(p, code, t.nodes)
	return t
}

// stepNode builds the single-instruction closure for one pc. Each closure
// charges Steps/Cycles exactly as Step does (before executing, so error
// exits leave identical accounting), leaves the PC at the instruction on
// error, and advances it on success.
func stepNode(p *Program, in Instr, pc int, nx *tnode, next func(int) *tnode) func(*Machine) (*tnode, error) {
	npc := pc + 1
	switch in.Op {
	case OpNop:
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			m.PC = npc
			return nx, nil
		}
	case OpPush:
		cv := p.Consts[in.A]
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			m.stack = append(m.stack, cv)
			m.PC = npc
			return nx, nil
		}
	case OpLoad:
		sym := int(in.A)
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 4
			v, err := m.Bus.LoadSym(sym)
			if err != nil {
				return nil, err
			}
			m.stack = append(m.stack, v)
			m.PC = npc
			return nx, nil
		}
	case OpStore:
		sym := int(in.A)
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 4
			v := m.pop()
			if err := m.Bus.StoreSym(sym, v); err != nil {
				return nil, err
			}
			if m.Hook != nil {
				hit, cost := m.Hook.CheckStore(sym, v)
				m.Res.Cycles += cost
				m.Res.CheckCycles += cost
				if hit {
					m.Res.BreakPC = pc
					m.PC = npc
					return nil, nil
				}
			}
			m.PC = npc
			return nx, nil
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		ab := byte(in.A)
		if ab == 0 {
			ab = arithByte(in.Op)
		}
		cyc := in.Op.Cycles()
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += cyc
			n := len(m.stack)
			b, a := m.stack[n-1], m.stack[n-2]
			m.stack = m.stack[:n-2]
			r, err := value.Arith(ab, a, b)
			if err != nil {
				return nil, fmt.Errorf("codegen: pc %d: %w", pc, err)
			}
			m.stack = append(m.stack, r)
			m.PC = npc
			return nx, nil
		}
	case OpNeg:
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			v, err := value.Neg(m.pop())
			if err != nil {
				return nil, fmt.Errorf("codegen: pc %d: %w", pc, err)
			}
			m.stack = append(m.stack, v)
			m.PC = npc
			return nx, nil
		}
	case OpNot:
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			m.stack = append(m.stack, value.B(!m.pop().Bool()))
			m.PC = npc
			return nx, nil
		}
	case OpLT, OpLE, OpGT, OpGE:
		op := in.Op
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			n := len(m.stack)
			b, a := m.stack[n-1], m.stack[n-2]
			m.stack = m.stack[:n-2]
			c, err := value.Compare(a, b)
			if err != nil {
				return nil, fmt.Errorf("codegen: pc %d: %w", pc, err)
			}
			var r bool
			switch op {
			case OpLT:
				r = c < 0
			case OpLE:
				r = c <= 0
			case OpGT:
				r = c > 0
			default:
				r = c >= 0
			}
			m.stack = append(m.stack, value.B(r))
			m.PC = npc
			return nx, nil
		}
	case OpEQ:
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			n := len(m.stack)
			b, a := m.stack[n-1], m.stack[n-2]
			m.stack = m.stack[:n-2]
			m.stack = append(m.stack, value.B(value.Equal(a, b)))
			m.PC = npc
			return nx, nil
		}
	case OpNE:
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			n := len(m.stack)
			b, a := m.stack[n-1], m.stack[n-2]
			m.stack = m.stack[:n-2]
			m.stack = append(m.stack, value.B(!value.Equal(a, b)))
			m.PC = npc
			return nx, nil
		}
	case OpJmp:
		jpc := int(in.A)
		jn := next(jpc)
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 2
			m.PC = jpc
			return jn, nil
		}
	case OpJZ:
		jpc := int(in.A)
		jn := next(jpc)
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 2
			if !m.pop().Bool() {
				m.PC = jpc
				return jn, nil
			}
			m.PC = npc
			return nx, nil
		}
	case OpJNZ:
		jpc := int(in.A)
		jn := next(jpc)
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 2
			if m.pop().Bool() {
				m.PC = jpc
				return jn, nil
			}
			m.PC = npc
			return nx, nil
		}
	case OpCall:
		name := builtinNames[in.A]
		argc := int(in.B)
		apply := expr.BuiltinApply(name, argc)
		if apply == nil {
			// Arity statically out of range: keep the canonical CallBuiltin
			// error by resolving per invocation.
			apply = func(args []value.Value) (value.Value, error) {
				return expr.CallBuiltin(name, args)
			}
		}
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += 16
			base := len(m.stack) - argc
			r, err := apply(m.stack[base:])
			m.stack = m.stack[:base]
			if err != nil {
				return nil, fmt.Errorf("codegen: pc %d: %w", pc, err)
			}
			m.stack = append(m.stack, r)
			m.PC = npc
			return nx, nil
		}
	case OpEmit:
		tmpl := int(in.A)
		hasVal := in.B != 0
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles += EmitCycles
			ref := EmitRef{Template: tmpl}
			if hasVal {
				ref.Value = m.pop()
				ref.HasValue = true
			}
			m.Res.Emits = append(m.Res.Emits, ref)
			if m.Hook != nil {
				hit, cost := m.Hook.CheckEmit(ref)
				m.Res.Cycles += cost
				m.Res.CheckCycles += cost
				if hit {
					m.Res.BreakPC = pc
					m.PC = npc
					return nil, nil
				}
			}
			m.PC = npc
			return nx, nil
		}
	default: // OpHalt
		return func(m *Machine) (*tnode, error) {
			m.Res.Steps++
			m.Res.Cycles++
			m.halted = true
			return nil, nil
		}
	}
}

// runThreaded is RunBudget over the threaded form. It reproduces the
// interpreter loop exactly: the step-limit check precedes every
// instruction, the budget check follows every instruction (the one in
// flight completes, so the run may overshoot by its cost), and a break
// hit or completion ends the run at the same boundary.
func (m *Machine) runThreaded(budget uint64) (ExecResult, error) {
	m.Res.BreakPC = -1
	if m.halted || m.PC >= len(m.threaded.nodes) {
		return m.Res, nil
	}
	start := m.Res.Cycles
	cur := &m.threaded.nodes[m.PC]
	for {
		if m.Res.Steps >= maxSteps {
			return m.Res, fmt.Errorf("codegen: step limit exceeded at pc %d", m.PC)
		}
		var next *tnode
		var err error
		// De-fuse to single-step whenever a break hook is armed, a budget
		// boundary could land inside the superinstruction, or the step
		// limit could trip inside it.
		if cur.fused != nil && m.Hook == nil &&
			budget-(m.Res.Cycles-start) > cur.fusedButLast &&
			m.Res.Steps+cur.fusedLen <= maxSteps {
			next, err = cur.fused(m)
		} else {
			next, err = cur.step(m)
		}
		if err != nil {
			return m.Res, err
		}
		if next == nil || m.Res.Cycles-start >= budget {
			return m.Res, nil
		}
		cur = next
	}
}
