package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
	"repro/models"
)

// The differential gate of the threaded backend: for every registered
// model, for fuzz-generated instruction sequences, and for budgeted slices
// landing on every interior boundary of every fused superinstruction, the
// interpreter and the threaded form must agree bit-for-bit — ExecResult
// (cycles, steps, check cycles, emits, BreakPC), bus state, final PC, and
// error text.

// diffRun executes code once on each backend from identical zero-init
// buses and compares everything observable.
func diffRun(t *testing.T, tag string, p *Program, code []Instr, seed func(*MapBus)) {
	t.Helper()
	th := Thread(p, code)
	if th == nil {
		t.Fatalf("%s: Thread returned nil for valid code", tag)
	}
	ib, tb := NewMapBus(p.Symbols), NewMapBus(p.Symbols)
	if seed != nil {
		seed(ib)
		seed(tb)
	}
	im := NewMachine(p, code, ib)
	tm := NewMachine(p, code, tb)
	tm.SetThreaded(th)
	if !tm.ThreadedAttached() {
		t.Fatalf("%s: threaded form did not attach", tag)
	}
	ires, ierr := im.Run()
	tres, terr := tm.Run()
	compareRuns(t, tag, im, tm, ires, tres, ierr, terr, ib, tb)
}

func compareRuns(t *testing.T, tag string, im, tm *Machine, ires, tres ExecResult, ierr, terr error, ib, tb *MapBus) {
	t.Helper()
	if (ierr == nil) != (terr == nil) || (ierr != nil && ierr.Error() != terr.Error()) {
		t.Fatalf("%s: interp err = %v, threaded err = %v", tag, ierr, terr)
	}
	if ires.Cycles != tres.Cycles || ires.Steps != tres.Steps ||
		ires.CheckCycles != tres.CheckCycles || ires.BreakPC != tres.BreakPC {
		t.Fatalf("%s: interp result %+v, threaded result %+v", tag, ires, tres)
	}
	if len(ires.Emits) != len(tres.Emits) {
		t.Fatalf("%s: interp %d emits, threaded %d", tag, len(ires.Emits), len(tres.Emits))
	}
	for i := range ires.Emits {
		ie, te := ires.Emits[i], tres.Emits[i]
		if ie.Template != te.Template || ie.HasValue != te.HasValue ||
			(ie.HasValue && !value.Equal(ie.Value, te.Value)) {
			t.Fatalf("%s: emit %d: interp %+v, threaded %+v", tag, i, ie, te)
		}
	}
	if im.PC != tm.PC || im.Done() != tm.Done() {
		t.Fatalf("%s: interp PC=%d done=%v, threaded PC=%d done=%v",
			tag, im.PC, im.Done(), tm.PC, tm.Done())
	}
	for i := range ib.Vals {
		if ib.Vals[i].Kind() != tb.Vals[i].Kind() || !value.Equal(ib.Vals[i], tb.Vals[i]) {
			t.Fatalf("%s: symbol %s: interp %v, threaded %v",
				tag, ib.Table.Sym(i).Name, ib.Vals[i], tb.Vals[i])
		}
	}
}

// TestThreadedMatchesInterpreterAllModels runs every unit of every
// registered model — init and several body releases, clean and fully
// instrumented — on both backends and requires identical results.
func TestThreadedMatchesInterpreterAllModels(t *testing.T) {
	for _, name := range models.Names() {
		for _, instr := range []Instrument{{}, {StateEnter: true, Transitions: true, Signals: true, TaskEvents: true}} {
			sys, err := models.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(sys, Options{Instrument: instr})
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range prog.Units {
				tag := fmt.Sprintf("%s(%v)/%s", name, instr.Any(), u.Name)
				if u.ThreadedInit == nil || u.ThreadedBody == nil {
					t.Fatalf("%s: Compile did not attach threaded forms", tag)
				}
				ib, tb := NewMapBus(prog.Symbols), NewMapBus(prog.Symbols)
				im := NewMachine(prog, u.Init, ib)
				tm := NewMachine(prog, u.Init, tb)
				tm.SetThreaded(u.ThreadedInit)
				ires, ierr := im.Run()
				tres, terr := tm.Run()
				compareRuns(t, tag+"/init", im, tm, ires, tres, ierr, terr, ib, tb)

				// Several releases with evolving inputs: latch, run, compare.
				rng := rand.New(rand.NewSource(0x5eed))
				for rel := 0; rel < 5; rel++ {
					for _, idx := range u.InputSyms {
						v := value.F(float64(rng.Intn(80)) - 20)
						_ = ib.StoreSym(idx, v)
						_ = tb.StoreSym(idx, v)
					}
					for _, bus := range []*MapBus{ib, tb} {
						for _, lp := range u.InLatch {
							v, _ := bus.LoadSym(lp.Work)
							_ = bus.StoreSym(lp.Out, v)
						}
					}
					im, tm = NewMachine(prog, u.Body, ib), NewMachine(prog, u.Body, tb)
					tm.SetThreaded(u.ThreadedBody)
					ires, ierr = im.Run()
					tres, terr = tm.Run()
					compareRuns(t, fmt.Sprintf("%s/body@%d", tag, rel), im, tm, ires, tres, ierr, terr, ib, tb)
				}
			}
		}
	}
}

// fuzzProgram builds the symbol/const pool the generated sequences index.
func fuzzProgram(t *testing.T) *Program {
	t.Helper()
	p := &Program{Symbols: NewSymbolTable()}
	for i, k := range []value.Kind{value.Float, value.Int, value.Bool, value.Float, value.Int} {
		if _, err := p.Symbols.Alloc(fmt.Sprintf("s%d", i), k, ""); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []value.Value{
		value.F(0), value.F(1.5), value.F(-3), value.I(0), value.I(7), value.B(true),
	} {
		p.Consts = append(p.Consts, v)
	}
	p.Events = []EventTemplate{{Source: "fuzz"}}
	return p
}

// genCode emits one stack-disciplined random instruction sequence: a depth
// counter keeps pops legal, forward jumps target the end of the sequence
// (any leftover stack is fine), and the constant pool includes zeros so
// division-by-zero error paths are exercised.
func genCode(rng *rand.Rand, p *Program) []Instr {
	var code []Instr
	depth := 0
	n := 4 + rng.Intn(24)
	for i := 0; i < n; i++ {
		switch pick := rng.Intn(10); {
		case pick < 3 || depth == 0:
			if rng.Intn(2) == 0 {
				code = append(code, Instr{Op: OpPush, A: int32(rng.Intn(len(p.Consts)))})
			} else {
				code = append(code, Instr{Op: OpLoad, A: int32(rng.Intn(p.Symbols.Len()))})
			}
			depth++
		case pick < 5 && depth >= 2:
			op := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}[rng.Intn(11)]
			in := Instr{Op: op}
			if isArith(op) {
				in.A = int32(arithByte(op))
			}
			code = append(code, in)
			depth--
		case pick < 6:
			code = append(code, Instr{Op: OpStore, A: int32(rng.Intn(p.Symbols.Len()))})
			depth--
		case pick < 7:
			op := OpNeg
			if rng.Intn(2) == 0 {
				op = OpNot
			}
			code = append(code, Instr{Op: op})
		case pick < 8:
			// Forward branch to the end: the fall-through keeps its depth.
			op := []Op{OpJZ, OpJNZ}[rng.Intn(2)]
			code = append(code, Instr{Op: op, A: -1}) // patched below
			depth--
		case pick < 9 && depth >= 1:
			code = append(code, Instr{Op: OpCall, A: 0, B: 1}) // abs/1
		default:
			code = append(code, Instr{Op: OpEmit, A: 0, B: 0})
		}
	}
	for i := range code {
		if (code[i].Op == OpJZ || code[i].Op == OpJNZ) && code[i].A == -1 {
			code[i].A = int32(len(code))
		}
	}
	return code
}

// TestThreadedMatchesInterpreterFuzz compares the backends over seeded
// random instruction sequences, run to completion and in budget-1 slices.
func TestThreadedMatchesInterpreterFuzz(t *testing.T) {
	p := fuzzProgram(t)
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		code := genCode(rng, p)
		tag := fmt.Sprintf("fuzz#%d", iter)
		seed := func(b *MapBus) {
			_ = b.StoreSym(0, value.F(2.25))
			_ = b.StoreSym(1, value.I(-4))
			_ = b.StoreSym(2, value.B(true))
		}
		diffRun(t, tag, p, code, seed)

		// The same sequence again, single-cycle slices against the
		// interpreter run — every instruction boundary is a preemption.
		th := Thread(p, code)
		ib, tb := NewMapBus(p.Symbols), NewMapBus(p.Symbols)
		seed(ib)
		seed(tb)
		im, tm := NewMachine(p, code, ib), NewMachine(p, code, tb)
		tm.SetThreaded(th)
		var ierr, terr error
		for guard := 0; !im.Done() && ierr == nil; guard++ {
			if guard > 10_000 {
				t.Fatalf("%s: sliced run does not terminate", tag)
			}
			_, ierr = im.RunBudget(1)
			_, terr = tm.RunBudget(1)
			compareRuns(t, tag+"/slice", im, tm, im.Res, tm.Res, ierr, terr, ib, tb)
		}
	}
}
