package models

import (
	"fmt"
	"sort"

	"repro/internal/comdes"
)

// Registry: the built-in models addressable by name — the same catalogue
// the gmdf CLI offers — so the debug-farm server and the CLI build
// identical systems (and therefore byte-identical traces) from the same
// string. Each call returns a fresh, independent system; the expensive
// shared artifact is the compiled program, cached by the caller.

// Names lists the built-in model names in stable order.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var builders = map[string]func() (*comdes.System, error){
	"heating":      func() (*comdes.System, error) { return Heating(HeatingOptions{}) },
	"traffic":      TrafficLight,
	"ring":         func() (*comdes.System, error) { return TokenRing(4) },
	"dist":         Distributed,
	"priorityload": PriorityLoad,
}

// ByName builds the named built-in model.
func ByName(name string) (*comdes.System, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b()
}
