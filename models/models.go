// Package models provides ready-made COMDES design models: the reference
// applications used by the examples, the experiment harness and the
// benchmarks. Each constructor returns a fresh, validated system.
package models

import (
	"fmt"

	"repro/internal/comdes"
	"repro/internal/value"
)

// TrafficLight is the quickstart model: a single actor whose state machine
// cycles Red -> Green -> Yellow on a sawtooth clock input `t` (seconds)
// supplied by the environment (wrap at 12 s).
func TrafficLight() (*comdes.System, error) {
	sm, err := comdes.NewStateMachineFB(comdes.SMConfig{
		Name:    "light",
		Inputs:  []comdes.Port{{Name: "t", Kind: value.Float}},
		Outputs: []comdes.Port{{Name: "lamp", Kind: value.Int}}, // 0=red 1=green 2=yellow
		Initial: "Red",
		States: []comdes.SMStateDef{
			{Name: "Red", Entry: map[string]string{"lamp": "0"}},
			{Name: "Green", Entry: map[string]string{"lamp": "1"}},
			{Name: "Yellow", Entry: map[string]string{"lamp": "2"}},
		},
		Transitions: []comdes.SMTransitionDef{
			{Name: "go", From: "Red", To: "Green", Guard: "t > 3 && t <= 8"},
			{Name: "caution", From: "Green", To: "Yellow", Guard: "t > 8"},
			{Name: "stop", From: "Yellow", To: "Red", Guard: "t <= 3"},
		},
	})
	if err != nil {
		return nil, err
	}
	net := comdes.NewNetwork("lightnet",
		[]comdes.Port{{Name: "t", Kind: value.Float}},
		[]comdes.Port{{Name: "lamp", Kind: value.Int}})
	if err := net.Add(sm); err != nil {
		return nil, err
	}
	if err := net.Connect("", "t", "light", "t"); err != nil {
		return nil, err
	}
	if err := net.Connect("light", "lamp", "", "lamp"); err != nil {
		return nil, err
	}
	actor, err := comdes.NewActor("signal", net, comdes.TaskSpec{PeriodNs: 100_000_000, DeadlineNs: 50_000_000})
	if err != nil {
		return nil, err
	}
	sys := comdes.NewSystem("traffic")
	if err := sys.AddActor(actor); err != nil {
		return nil, err
	}
	return sys, sys.Validate()
}

// HeatingOptions tweak the flagship model.
type HeatingOptions struct {
	// WrongGuard seeds the E9 *design error*: the modeller typed the
	// cut-out guard as `temp > 40` instead of `temp > 21`, so the heater
	// overshoots.
	WrongGuard bool
}

// Heating is the flagship control application (the domain the paper's
// prototype targets): a thermostat actor combining all four COMDES block
// kinds — a state machine (thermostat), a modal block (eco/comfort power
// scaling), a composite block (output conditioning pipeline) and basic
// blocks — plus a monitoring actor bound over a labelled signal.
func Heating(opt HeatingOptions) (*comdes.System, error) {
	cutOut := "temp > 21"
	if opt.WrongGuard {
		cutOut = "temp > 40"
	}
	sm, err := comdes.NewStateMachineFB(comdes.SMConfig{
		Name:    "thermostat",
		Inputs:  []comdes.Port{{Name: "temp", Kind: value.Float}},
		Outputs: []comdes.Port{{Name: "heat", Kind: value.Bool}, {Name: "demand", Kind: value.Float}},
		Initial: "Idle",
		States: []comdes.SMStateDef{
			{Name: "Idle", Entry: map[string]string{"heat": "false", "demand": "0"}},
			{Name: "Heating", Entry: map[string]string{"heat": "true", "demand": "100"}},
		},
		Transitions: []comdes.SMTransitionDef{
			{Name: "cold", From: "Idle", To: "Heating", Guard: "temp < 19"},
			{Name: "warm", From: "Heating", To: "Idle", Guard: cutOut},
		},
	})
	if err != nil {
		return nil, err
	}

	eco := comdes.MustComponent("gain", "eco", map[string]value.Value{"k": value.F(0.5)})
	comfort := comdes.MustComponent("gain", "comfort", map[string]value.Value{"k": value.F(1)})
	off := comdes.MustComponent("const", "off", map[string]value.Value{"value": value.F(0)})
	boost, err := comdes.NewModalFB("boost", "mode",
		[]comdes.Port{{Name: "in", Kind: value.Float}, {Name: "mode", Kind: value.Int}},
		[]comdes.Port{{Name: "out", Kind: value.Float}},
		[]comdes.ModalMode{{Selector: 1, Block: eco}, {Selector: 2, Block: comfort}}, off)
	if err != nil {
		return nil, err
	}

	shapeNet := comdes.NewNetwork("shape",
		[]comdes.Port{{Name: "in", Kind: value.Float}},
		[]comdes.Port{{Name: "out", Kind: value.Float}})
	shapeNet.MustAdd(comdes.MustComponent("gain", "trim", map[string]value.Value{"k": value.F(1)}))
	shapeNet.MustAdd(comdes.MustComponent("limit", "sat", map[string]value.Value{"lo": value.F(0), "hi": value.F(100)}))
	shapeNet.MustConnect("", "in", "trim", "in").
		MustConnect("trim", "out", "sat", "in").
		MustConnect("sat", "out", "", "out")
	shape, err := comdes.NewCompositeFB(shapeNet)
	if err != nil {
		return nil, err
	}

	net := comdes.NewNetwork("heaternet",
		[]comdes.Port{{Name: "temp", Kind: value.Float}, {Name: "mode", Kind: value.Int}},
		[]comdes.Port{{Name: "heat", Kind: value.Bool}, {Name: "power", Kind: value.Float}})
	net.MustAdd(sm).MustAdd(boost).MustAdd(shape)
	net.MustConnect("", "temp", "thermostat", "temp").
		MustConnect("thermostat", "demand", "boost", "in").
		MustConnect("", "mode", "boost", "mode").
		MustConnect("boost", "out", "shape", "in").
		MustConnect("shape", "out", "", "power").
		MustConnect("thermostat", "heat", "", "heat")
	heater, err := comdes.NewActor("heater", net, comdes.TaskSpec{PeriodNs: 10_000_000, DeadlineNs: 5_000_000})
	if err != nil {
		return nil, err
	}

	monNet := comdes.NewNetwork("monnet",
		[]comdes.Port{{Name: "power", Kind: value.Float}},
		[]comdes.Port{{Name: "alarm", Kind: value.Bool}})
	monNet.MustAdd(comdes.MustComponent("compare", "over", map[string]value.Value{"threshold": value.F(80)}))
	monNet.MustConnect("", "power", "over", "in").MustConnect("over", "out", "", "alarm")
	monitor, err := comdes.NewActor("monitor", monNet, comdes.TaskSpec{PeriodNs: 10_000_000, OffsetNs: 5_000_000, DeadlineNs: 5_000_000})
	if err != nil {
		return nil, err
	}

	sys := comdes.NewSystem("heating")
	if err := sys.AddActor(heater); err != nil {
		return nil, err
	}
	if err := sys.AddActor(monitor); err != nil {
		return nil, err
	}
	if err := sys.Bind("power_sig", "heater", "power", "monitor", "power"); err != nil {
		return nil, err
	}
	return sys, sys.Validate()
}

// PriorityLoad is the preemptive-scheduling demonstrator: a high-priority
// "hog" actor whose body eats most of the CPU every millisecond, and a
// low-priority "lowly" actor whose modest body cannot finish inside its
// deadline once the hog keeps preempting it. On a 1 MHz board
// (target.Config{CPUHz: 1_000_000}) under dtm.FixedPriority the lowly task
// misses every deadline (it needs ~600 µs of CPU but gets ~120 µs per
// millisecond gap); run cooperatively the same model meets every deadline,
// because each release executes at its release instant with zero modeled
// interference — the difference the DTM timing experiments need to observe.
func PriorityLoad() (*comdes.System, error) {
	mkChain := func(actor string, blocks int, task comdes.TaskSpec) (*comdes.Actor, error) {
		net := comdes.NewNetwork(actor+"net",
			[]comdes.Port{{Name: "x", Kind: value.Float}},
			[]comdes.Port{{Name: "y", Kind: value.Float}})
		prev, prevPort := "", "x"
		for i := 0; i < blocks; i++ {
			g := comdes.MustComponent("gain", fmt.Sprintf("g%d", i), map[string]value.Value{"k": value.F(1)})
			net.MustAdd(g)
			net.MustConnect(prev, prevPort, g.Name(), "in")
			prev, prevPort = g.Name(), "out"
		}
		net.MustConnect(prev, prevPort, "", "y")
		return comdes.NewActor(actor, net, task)
	}
	// Each gain block compiles to LOAD+PUSH+MUL+STORE = 12 VM cycles, so
	// the hog body costs ~804 cycles (~804 µs at 1 MHz, ~80% utilisation
	// at its 1 ms period) and the lowly body ~600 cycles.
	hog, err := mkChain("hog", 67, comdes.TaskSpec{
		PeriodNs: 1_000_000, DeadlineNs: 1_000_000, Priority: 10,
	})
	if err != nil {
		return nil, err
	}
	lowly, err := mkChain("lowly", 50, comdes.TaskSpec{
		PeriodNs: 8_000_000, DeadlineNs: 2_000_000, Priority: 1,
	})
	if err != nil {
		return nil, err
	}
	sys := comdes.NewSystem("priorityload")
	if err := sys.AddActor(hog); err != nil {
		return nil, err
	}
	if err := sys.AddActor(lowly); err != nil {
		return nil, err
	}
	return sys, sys.Validate()
}

// TokenRing builds n actors whose state machines pass a token around a
// ring — the paper's "multiple state machine models interacting with each
// other" (multi-instance input models, experiment E11). Actor 0 starts
// holding the token.
func TokenRing(n int) (*comdes.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("models: token ring needs >= 2 actors")
	}
	sys := comdes.NewSystem(fmt.Sprintf("ring%d", n))
	for i := 0; i < n; i++ {
		initial := "Wait"
		if i == 0 {
			initial = "Hold"
		}
		// Token addresses are 1-based so the unset-signal default (0)
		// never matches a take guard. Node i answers to address i+1 and
		// the pass action forwards to ((i+1) mod n)+1.
		nextAddr := (i+1)%n + 1
		sm, err := comdes.NewStateMachineFB(comdes.SMConfig{
			Name:    "node",
			Inputs:  []comdes.Port{{Name: "tin", Kind: value.Int}},
			Outputs: []comdes.Port{{Name: "tout", Kind: value.Int}},
			Initial: initial,
			States: []comdes.SMStateDef{
				{Name: "Wait", Entry: map[string]string{"tout": "-1"}},
				{Name: "Hold", Entry: map[string]string{"tout": "-1"}},
			},
			Transitions: []comdes.SMTransitionDef{
				{Name: "take", From: "Wait", To: "Hold", Guard: fmt.Sprintf("tin == %d", i+1)},
				{Name: "pass", From: "Hold", To: "Wait", Guard: "true",
					Actions: map[string]string{"tout": fmt.Sprintf("%d", nextAddr)}},
			},
		})
		if err != nil {
			return nil, err
		}
		net := comdes.NewNetwork("ringnet",
			[]comdes.Port{{Name: "tin", Kind: value.Int}},
			[]comdes.Port{{Name: "tout", Kind: value.Int}})
		if err := net.Add(sm); err != nil {
			return nil, err
		}
		net.MustConnect("", "tin", "node", "tin").MustConnect("node", "tout", "", "tout")
		actor, err := comdes.NewActor(fmt.Sprintf("ring%d", i), net,
			comdes.TaskSpec{PeriodNs: 1_000_000, DeadlineNs: 500_000})
		if err != nil {
			return nil, err
		}
		if err := sys.AddActor(actor); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		if err := sys.Bind(fmt.Sprintf("tok%d", i),
			fmt.Sprintf("ring%d", i), "tout",
			fmt.Sprintf("ring%d", next), "tin"); err != nil {
			return nil, err
		}
	}
	return sys, sys.Validate()
}

// Distributed is a two-node system: a producer ramp on nodeA streamed over
// the network to a consumer on nodeB that doubles it.
func Distributed() (*comdes.System, error) {
	prodNet := comdes.NewNetwork("pnet", nil, []comdes.Port{{Name: "v", Kind: value.Float}})
	prodNet.MustAdd(comdes.MustComponent("const", "one", map[string]value.Value{"value": value.F(1)}))
	prodNet.MustAdd(comdes.MustComponent("sum", "acc", nil))
	prodNet.MustConnect("one", "out", "acc", "a").
		MustConnect("acc", "out", "acc", "b").
		MustConnect("acc", "out", "", "v")
	prod, err := comdes.NewActor("producer", prodNet, comdes.TaskSpec{PeriodNs: 2_000_000, DeadlineNs: 1_000_000})
	if err != nil {
		return nil, err
	}
	consNet := comdes.NewNetwork("cnet",
		[]comdes.Port{{Name: "v", Kind: value.Float}},
		[]comdes.Port{{Name: "twice", Kind: value.Float}})
	consNet.MustAdd(comdes.MustComponent("gain", "dbl", map[string]value.Value{"k": value.F(2)}))
	consNet.MustConnect("", "v", "dbl", "in").MustConnect("dbl", "out", "", "twice")
	cons, err := comdes.NewActor("consumer", consNet, comdes.TaskSpec{PeriodNs: 2_000_000, OffsetNs: 1_500_000, DeadlineNs: 500_000})
	if err != nil {
		return nil, err
	}
	sys := comdes.NewSystem("dist")
	if err := sys.AddActor(prod); err != nil {
		return nil, err
	}
	if err := sys.AddActor(cons); err != nil {
		return nil, err
	}
	if err := sys.Bind("v_sig", "producer", "v", "consumer", "v"); err != nil {
		return nil, err
	}
	if err := sys.Place("producer", "nodeA"); err != nil {
		return nil, err
	}
	if err := sys.Place("consumer", "nodeB"); err != nil {
		return nil, err
	}
	return sys, sys.Validate()
}

// RingCluster is TokenRing placed one actor per node — an n-node
// distributed deployment where every node both produces and consumes a
// cross-node signal, so a TDMA schedule gives each node a slot. Node names
// are zero-padded (node00, node01, ...) so sorted node order equals ring
// order; n is capped at two digits. It is the scale model for the parallel
// cluster execution benchmark.
func RingCluster(n int) (*comdes.System, error) {
	if n > 99 {
		return nil, fmt.Errorf("models: ring cluster supports at most 99 nodes (zero-padded names)")
	}
	sys, err := TokenRing(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := sys.Place(fmt.Sprintf("ring%d", i), fmt.Sprintf("node%02d", i)); err != nil {
			return nil, err
		}
	}
	return sys, sys.Validate()
}

// ChainFSM builds one actor containing n independent two-state machines in
// a single network — a synthetic model-size sweep for the abstraction
// benchmark (E4).
func ChainFSM(n int) (*comdes.System, error) {
	if n < 1 {
		return nil, fmt.Errorf("models: chain needs >= 1 machine")
	}
	inputs := []comdes.Port{{Name: "x", Kind: value.Float}}
	var outputs []comdes.Port
	for i := 0; i < n; i++ {
		outputs = append(outputs, comdes.Port{Name: fmt.Sprintf("o%d", i), Kind: value.Bool})
	}
	net := comdes.NewNetwork("chain", inputs, outputs)
	for i := 0; i < n; i++ {
		sm, err := comdes.NewStateMachineFB(comdes.SMConfig{
			Name:    fmt.Sprintf("m%d", i),
			Inputs:  []comdes.Port{{Name: "x", Kind: value.Float}},
			Outputs: []comdes.Port{{Name: "y", Kind: value.Bool}},
			Initial: "A",
			States: []comdes.SMStateDef{
				{Name: "A", Entry: map[string]string{"y": "false"}},
				{Name: "B", Entry: map[string]string{"y": "true"}},
			},
			Transitions: []comdes.SMTransitionDef{
				{Name: "up", From: "A", To: "B", Guard: fmt.Sprintf("x > %d", i)},
				{Name: "down", From: "B", To: "A", Guard: fmt.Sprintf("x <= %d", i)},
			},
		})
		if err != nil {
			return nil, err
		}
		if err := net.Add(sm); err != nil {
			return nil, err
		}
		net.MustConnect("", "x", sm.Name(), "x").
			MustConnect(sm.Name(), "y", "", fmt.Sprintf("o%d", i))
	}
	actor, err := comdes.NewActor("chain", net, comdes.TaskSpec{PeriodNs: 1_000_000, DeadlineNs: 500_000})
	if err != nil {
		return nil, err
	}
	sys := comdes.NewSystem(fmt.Sprintf("chain%d", n))
	if err := sys.AddActor(actor); err != nil {
		return nil, err
	}
	return sys, sys.Validate()
}
