package models

import (
	"testing"

	"repro/internal/comdes"
	"repro/internal/value"
)

func TestTrafficLightCycles(t *testing.T) {
	sys, err := TrafficLight()
	if err != nil {
		t.Fatal(err)
	}
	it := comdes.NewInterpreter(sys)
	sm := sys.Actor("signal").Net.Block("light").(*comdes.StateMachineFB)
	var seen []string
	for cycle := 0; cycle < 240; cycle++ {
		tt := float64(cycle%120) / 10 // sawtooth 0..12 s
		it.Env["signal.t"] = value.F(tt)
		if _, err := it.StepActor("signal"); err != nil {
			t.Fatal(err)
		}
		if len(seen) == 0 || seen[len(seen)-1] != sm.Current() {
			seen = append(seen, sm.Current())
		}
	}
	// Two full cycles: Red Green Yellow Red Green Yellow Red (7 entries).
	if len(seen) < 6 {
		t.Fatalf("state sequence too short: %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		valid := map[string]string{"Red": "Green", "Green": "Yellow", "Yellow": "Red"}
		if valid[seen[i-1]] != seen[i] {
			t.Fatalf("illegal sequence %s -> %s in %v", seen[i-1], seen[i], seen)
		}
	}
}

func TestHeatingLimitCycle(t *testing.T) {
	sys, err := Heating(HeatingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	it := comdes.NewInterpreter(sys)
	sm := sys.Actor("heater").Net.Block("thermostat").(*comdes.StateMachineFB)
	temp := 15.0
	var states []string
	var maxPower float64
	for i := 0; i < 200; i++ {
		it.Env["heater.temp"] = value.F(temp)
		it.Env["heater.mode"] = value.I(2) // comfort
		out, err := it.StepActor("heater")
		if err != nil {
			t.Fatal(err)
		}
		if out["power"].Float() > maxPower {
			maxPower = out["power"].Float()
		}
		if out["power"].Float() > 0 {
			temp += 0.5
		} else {
			temp -= 0.3
		}
		if len(states) == 0 || states[len(states)-1] != sm.Current() {
			states = append(states, sm.Current())
		}
		if _, err := it.StepActor("monitor"); err != nil {
			t.Fatal(err)
		}
	}
	if len(states) < 3 {
		t.Fatalf("no limit cycle: %v", states)
	}
	if maxPower != 100 {
		t.Errorf("comfort power = %g, want 100", maxPower)
	}
	// Temperature regulated near the band.
	if temp < 14 || temp > 26 {
		t.Errorf("temperature diverged: %g", temp)
	}
	// Eco mode halves the power.
	it2 := comdes.NewInterpreter(sys)
	it2.Env["heater.temp"] = value.F(10)
	it2.Env["heater.mode"] = value.I(1)
	out, err := it2.StepActor("heater")
	if err != nil {
		t.Fatal(err)
	}
	if out["power"].Float() != 50 {
		t.Errorf("eco power = %v, want 50", out["power"])
	}
}

func TestHeatingWrongGuardOvershoots(t *testing.T) {
	sys, err := Heating(HeatingOptions{WrongGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	it := comdes.NewInterpreter(sys)
	temp := 15.0
	maxTemp := temp
	for i := 0; i < 300; i++ {
		it.Env["heater.temp"] = value.F(temp)
		it.Env["heater.mode"] = value.I(2)
		out, err := it.StepActor("heater")
		if err != nil {
			t.Fatal(err)
		}
		if out["power"].Float() > 0 {
			temp += 0.5
		} else {
			temp -= 0.3
		}
		if temp > maxTemp {
			maxTemp = temp
		}
	}
	if maxTemp < 30 {
		t.Errorf("seeded design error should overshoot: max %g", maxTemp)
	}
}

func TestTokenRing(t *testing.T) {
	if _, err := TokenRing(1); err == nil {
		t.Error("ring of 1 should fail")
	}
	const n = 4
	sys, err := TokenRing(n)
	if err != nil {
		t.Fatal(err)
	}
	it := comdes.NewInterpreter(sys)
	holders := map[string]bool{}
	for cycle := 0; cycle < 4*n; cycle++ {
		holdersNow := 0
		for i := 0; i < n; i++ {
			name := holderName(i)
			if _, err := it.StepActor(name); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			sm := sys.Actor(holderName(i)).Net.Block("node").(*comdes.StateMachineFB)
			if sm.Current() == "Hold" {
				holdersNow++
				holders[holderName(i)] = true
			}
		}
		if holdersNow > 1 {
			t.Fatalf("cycle %d: %d simultaneous holders", cycle, holdersNow)
		}
	}
	if len(holders) != n {
		t.Errorf("token visited %d of %d nodes: %v", len(holders), n, holders)
	}
}

func holderName(i int) string {
	return "ring" + string(rune('0'+i))
}

func TestDistributedModel(t *testing.T) {
	sys, err := Distributed()
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Nodes()) != 2 {
		t.Errorf("nodes = %v", sys.Nodes())
	}
}

func TestChainFSM(t *testing.T) {
	if _, err := ChainFSM(0); err == nil {
		t.Error("chain of 0 should fail")
	}
	sys, err := ChainFSM(8)
	if err != nil {
		t.Fatal(err)
	}
	it := comdes.NewInterpreter(sys)
	it.Env["chain.x"] = value.F(4.5)
	out, err := it.StepActor("chain")
	if err != nil {
		t.Fatal(err)
	}
	// Machines 0..4 trip (x > i), 5..7 do not.
	for i := 0; i < 8; i++ {
		want := i < 5
		if out[outName(i)].Bool() != want {
			t.Errorf("o%d = %v, want %v", i, out[outName(i)], want)
		}
	}
}

func outName(i int) string { return "o" + string(rune('0'+i)) }
