// Command experiments regenerates every figure/claim reproduction table
// (E1–E12 in DESIGN.md) and prints them to stdout. The measured values are
// the ones recorded in EXPERIMENTS.md.
//
//	go run ./cmd/experiments
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	out, err := experiments.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
