// Command comdesgen is the code generator of the MDD pipeline (Fig. 1):
// it transforms a COMDES design model into executable target code and
// prints the generated pseudo-C listing, the symbol table (the JTAG
// monitored-variable candidates) and, optionally, the IR disassembly.
//
//	go run ./cmd/comdesgen -model heating -instrument -disasm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/comdes"
	"repro/internal/metamodel"
	"repro/models"
)

func main() {
	model := flag.String("model", "heating", "built-in model (heating|traffic|ring|distributed) or path to a COMDES model XML file")
	instrument := flag.Bool("instrument", false, "weave the active command interface (states, transitions, signals)")
	disasm := flag.Bool("disasm", false, "print IR disassembly per task")
	flag.Parse()

	sys, err := loadSystem(*model)
	if err != nil {
		log.Fatal(err)
	}
	opts := codegen.Options{}
	if *instrument {
		opts.Instrument = codegen.Instrument{StateEnter: true, Transitions: true, Signals: true}
	}
	prog, err := codegen.Compile(sys, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("// program %q: %d task(s), %d symbols, %d bytes RAM, instrumented=%v\n\n",
		prog.Name, len(prog.Units), prog.Symbols.Len(), prog.Symbols.RAMSize(), prog.Instrumented)
	for _, line := range prog.Source {
		fmt.Println(line)
	}
	fmt.Println("\n// ---- symbol table (JTAG monitored-variable candidates) ----")
	for _, s := range prog.Symbols.All() {
		elem := ""
		if s.Element != "" {
			elem = "  // " + s.Element
		}
		fmt.Printf("0x%04x  %-6s %-40s%s\n", s.Addr, s.Kind, s.Name, elem)
	}
	if *disasm {
		for _, u := range prog.Units {
			fmt.Printf("\n// ---- %s: init ----\n", u.Name)
			for _, l := range prog.Disassemble(u.Init) {
				fmt.Println(l)
			}
			fmt.Printf("\n// ---- %s: body (period %d ns, deadline %d ns) ----\n", u.Name, u.Period, u.Deadline)
			for _, l := range prog.Disassemble(u.Body) {
				fmt.Println(l)
			}
		}
	}
}

func loadSystem(name string) (*comdes.System, error) {
	switch name {
	case "heating":
		return models.Heating(models.HeatingOptions{})
	case "traffic":
		return models.TrafficLight()
	case "ring":
		return models.TokenRing(4)
	case "distributed":
		return models.Distributed()
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mod, err := metamodel.ReadModelXML(comdes.Metamodel(), f)
	if err != nil {
		return nil, err
	}
	return comdes.FromModel(mod)
}
