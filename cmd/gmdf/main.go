// Command gmdf is the Graphical Model Debugger tool: it walks the paper's
// Fig. 6 workflow — input selection, abstraction guide, command setting,
// GDM creation, debugging — against a simulated embedded target, printing
// the abstraction-guide panel (Fig. 4), live animation frames and the
// final timing diagram.
//
//	go run ./cmd/gmdf -model heating -transport passive -ms 3000
//	go run ./cmd/gmdf -model path/to/model.xml -gdm out.gdm
//
// With -connect it drives a session on a gmdfd debug farm server instead
// of an in-process board; the remote trace is byte-identical to the
// in-process one for the same model and budget:
//
//	go run ./cmd/gmdf -connect 127.0.0.1:7788 -model heating -ms 300 -trace remote.trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/comdes"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/metamodel"
	"repro/internal/target"
	"repro/internal/workbench"
	"repro/models"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmdf:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind an error return: no exit points between a
// side effect and its deferred cleanup, so a late failure (say, an
// unwritable -svg path) cannot skip the trace flush — and tests drive
// the binary end to end without forking.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmdf", flag.ContinueOnError)
	model := fs.String("model", "heating", "built-in model (heating|traffic|ring|dist) or COMDES model XML path; a placed multi-node model (dist) debugs as a cluster on a TDMA bus")
	scenario := fs.String("scenario", "", "scenario DSL file (.gmdf) to debug instead of -model; the source runs the full front end (parse, check, lint) and any finding prints as file:line:col with a caret excerpt")
	checkOnly := fs.Bool("check", false, "with -scenario: run the front end and print diagnostics, then exit without debugging (non-zero exit on errors)")
	transport := fs.String("transport", "active", "command interface: active (RS-232) | passive (JTAG)")
	ms := fs.Uint64("ms", 2000, "virtual milliseconds to debug")
	gdmOut := fs.String("gdm", "", "write the generated GDM file (JSON) here")
	svgOut := fs.String("svg", "", "write the final animated frame (SVG) here")
	breakMachine := fs.String("break-machine", "", "state machine to break on (e.g. heater.thermostat); on the active interface the breakpoint runs on the target itself")
	breakState := fs.String("break-state", "", "state whose entry trips -break-machine (e.g. Heating)")
	checkpointOut := fs.String("checkpoint", "", "write a serialized checkpoint of the final state here (restore it in a fresh process with -restore)")
	restoreIn := fs.String("restore", "", "restore a checkpoint taken from a run of the same model, then continue for -ms (models with stateful environments need the in-process recorder instead)")
	rewindMs := fs.Uint64("rewind", 0, "after the run, rewind the session to this virtual millisecond and report the state there (enables periodic checkpointing)")
	traceOut := fs.String("trace", "", "write the stable-format session trace here (checkpoint-replay determinism diffs)")
	clusterExec := fs.String("cluster-exec", "auto", "multi-node execution mode: auto (parallel on a TDMA bus) | serial | parallel; traces are byte-identical across modes")
	backend := fs.String("backend", "auto", "VM dispatch backend: auto|threaded (direct-threaded compiled bodies, the default) | interp (per-instruction interpreter escape hatch); both are bit-identical, threaded is faster")
	connect := fs.String("connect", "", "drive a session on a gmdfd farm server at this address instead of an in-process board")
	resume := fs.String("resume", "", "with -connect: resume a session from this checkpoint digest in the server's store")
	detach := fs.Bool("detach", false, "with -connect: detach with a checkpoint after the run and print its digest")
	digestOut := fs.String("digest-out", "", "with -connect -detach: also write the checkpoint digest to this file")
	campaignN := fs.Int("campaign", 0, "run a Monte Carlo campaign of this many variants forked from a shared warm checkpoint instead of one debug session; -ms is each variant's run budget")
	campaignWorkers := fs.Int("campaign-workers", 0, "campaign worker count (0 = all cores); cannot change the aggregate")
	campaignWarmMs := fs.Uint64("campaign-warm-ms", 50, "virtual milliseconds of shared warm-up before the fork point")
	campaignSeed := fs.Uint64("campaign-seed", 2010, "campaign seed; every variant's parameter draws derive from it")
	campaignLoss := fs.String("campaign-loss", "", "comma-separated bus loss rates (per-mille) to sweep, e.g. 0,100,400 (multi-node models)")
	campaignJitterUs := fs.String("campaign-jitter-us", "", "comma-separated bus release jitter bounds (µs) to sweep (multi-node models)")
	campaignRotate := fs.Bool("campaign-rotate-slots", false, "also rotate the TDMA slot-owner assignment per variant")
	campaignShuffle := fs.Bool("campaign-shuffle-priorities", false, "permute task priorities per variant (single-board FixedPriority models)")
	campaignMissBudget := fs.Int64("campaign-miss-budget", 0, "per-task deadline-miss tolerance (negative disables the check)")
	campaignDropBudget := fs.Int64("campaign-drop-budget", -1, "cluster-wide frame-drop tolerance (negative disables the check)")
	campaignShrink := fs.Bool("campaign-shrink", false, "binary-search each violating variant to its minimal repro window and attach the trace")
	campaignOut := fs.String("campaign-out", "", "write the aggregate JSON here (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	be, err := target.ParseBackend(*backend)
	if err != nil {
		return err
	}

	// The scenario front end runs before anything else: parse, check and
	// lint the DSL source, print every finding (warnings included) with
	// file:line:col positions, and refuse to debug a file with errors.
	var sc *dsl.Scenario
	if *scenario != "" {
		src, err := os.ReadFile(*scenario)
		if err != nil {
			return err
		}
		s, diags, err := dsl.LoadSource(*scenario, string(src))
		if len(diags) > 0 {
			fmt.Fprint(out, dsl.Render(*scenario, string(src), diags))
		}
		if err != nil {
			return err
		}
		sc = s
		if *checkOnly {
			fmt.Fprintf(out, "%s: system %q checks clean (%d actors, %d warnings)\n",
				*scenario, sc.Sys.Name(), len(sc.File.Actors), len(diags))
			return nil
		}
	} else if *checkOnly {
		return fmt.Errorf("-check needs -scenario")
	}

	// A scenario's run declaration sets the budget unless -ms was given
	// explicitly on the command line.
	budgetNs := *ms * 1_000_000
	if sc != nil && sc.RunNs() > 0 {
		msSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "ms" {
				msSet = true
			}
		})
		if !msSet {
			budgetNs = sc.RunNs()
		}
	}

	if *campaignN > 0 {
		if sc != nil {
			return fmt.Errorf("-campaign does not support -scenario yet; port the scenario to models.ByName first")
		}
		return runCampaign(out, campaignOpts{
			model: *model, variants: *campaignN, workers: *campaignWorkers,
			warmMs: *campaignWarmMs, runMs: *ms, seed: *campaignSeed,
			loss: *campaignLoss, jitterUs: *campaignJitterUs,
			rotate: *campaignRotate, shuffle: *campaignShuffle,
			missBudget: *campaignMissBudget, dropBudget: *campaignDropBudget,
			shrink: *campaignShrink, outPath: *campaignOut,
		})
	}

	if *connect != "" {
		ro := remoteOpts{
			addr: *connect, model: *model, resume: *resume,
			budgetNs: budgetNs, exec: *clusterExec,
			breakMachine: *breakMachine, breakState: *breakState,
			traceOut: *traceOut, detach: *detach, digestOut: *digestOut,
		}
		if sc != nil {
			// The server re-runs the same checker; its session builds from
			// the source text, so the fetched trace diffs clean against an
			// in-process -scenario run.
			ro.model, ro.source, ro.sourceName = "", sc.Source, sc.Name
		}
		return runRemote(out, ro)
	}

	var sys *comdes.System
	if sc != nil {
		sys = sc.Sys
	} else if sys, err = loadSystem(*model); err != nil {
		return err
	}
	meta := comdes.Metamodel()
	mod, err := comdes.ToModel(sys, meta)
	if err != nil {
		return err
	}

	// Fig. 6 steps 1–4 through the workbench wizard.
	w := workbench.NewWizard()
	if err := w.SelectInputs(meta, mod); err != nil {
		return err
	}
	if err := w.UseMapping(engine.DefaultCOMDESMapping()); err != nil {
		return err
	}
	fmt.Fprintln(out, "== abstraction guide (Fig. 4) ==")
	fmt.Fprint(out, w.GuidePanel())
	if err := w.FinishAbstraction(); err != nil {
		return err
	}
	for _, b := range defaultBindings() {
		if err := w.BindCommand(b); err != nil {
			return err
		}
	}
	if err := w.FinishCommandSetup(); err != nil {
		return err
	}
	fmt.Fprintf(out, "GDM created: %d elements, %d command bindings\n\n",
		len(w.GDM().Elements()), len(w.GDM().Bindings()))
	if *gdmOut != "" {
		data, err := w.GDM().MarshalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*gdmOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d bytes)\n", *gdmOut, len(data))
	}

	// A placed multi-node model debugs distributed: one board per node on
	// a shared clock, cross-node signals on a time-triggered TDMA bus, one
	// session over every node's active interface.
	if len(sys.Nodes()) > 1 {
		if *breakMachine != "" || *breakState != "" {
			return fmt.Errorf("-break-machine/-break-state are not supported on multi-node models yet")
		}
		if *transport == "passive" {
			return fmt.Errorf("multi-node models debug over every node's active interface; -transport passive is not supported")
		}
		exec, err := parseExec(*clusterExec)
		if err != nil {
			return err
		}
		ccfg := repro.StandardClusterConfig(sys.Nodes(), exec)
		var cenv func(now uint64, node string, b *target.Board)
		if sc != nil {
			ccfg = sc.ClusterConfig(exec)
			cenv = sc.ClusterEnvironment()
		}
		ccfg.Board.Backend = be
		return runCluster(out, sys, ccfg, cenv, budgetNs, *rewindMs, *traceOut, *checkpointOut, *restoreIn, *svgOut)
	}

	// Step 5 via the facade (compile + board + channel + session).
	tp := repro.Active
	if *transport == "passive" {
		tp = repro.Passive
	}
	bcfg := repro.StandardBoardConfig(sys.Name())
	envFn := repro.StandardEnvironment(sys.Name())
	if sc != nil {
		bcfg, envFn = sc.BoardConfig(), sc.Environment()
	}
	bcfg.Backend = be
	dbg, err := repro.Debug(sys, repro.DebugConfig{
		Transport:   tp,
		Environment: envFn,
		Board:       bcfg,
	})
	if err != nil {
		return err
	}
	// The trace is the session's primary artifact — flush it even when a
	// later output step fails, so a determinism diff never reads a
	// truncated file.
	traceWritten := false
	if *traceOut != "" {
		defer func() {
			if !traceWritten {
				_ = os.WriteFile(*traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644)
			}
		}()
	}

	if *restoreIn != "" {
		cp, err := checkpoint.ReadFile(*restoreIn)
		if err != nil {
			return err
		}
		if err := dbg.RestoreCheckpoint(cp); err != nil {
			return err
		}
		fmt.Fprintf(out, "restored checkpoint: t=%.3f ms, %d trace records carried over\n",
			float64(dbg.Board.Now())/1e6, dbg.Session.Trace.Len())
	}

	// Optional model-level breakpoint: set -> hit -> step -> clear ->
	// continue, end to end over the selected command interface. On the
	// active interface the condition is compiled onto the target-resident
	// agent (halt at the triggering instruction); passively it falls back
	// to host-side event filtering (halt after the frame crosses).
	budget := budgetNs
	if *breakMachine != "" && *breakState != "" {
		if err := dbg.BreakOnState("cli", *breakMachine, *breakState); err != nil {
			return err
		}
		where := "host-side (trace filtering)"
		if dbg.Session.Breakpoints()[0].OnTarget() {
			where = "on-target (resident agent)"
		}
		fmt.Fprintf(out, "breakpoint: enter %s.%s — armed %s\n", *breakMachine, *breakState, where)
	}
	if *rewindMs > 0 {
		// Periodic checkpoints + input/command logs: the session gains
		// reverse execution (enabled after breakpoint arming so the initial
		// checkpoint carries the armed condition).
		if _, err := dbg.EnableCheckpointing(250 * time.Millisecond); err != nil {
			return err
		}
	}
	if err := dbg.RunNs(budget); err != nil {
		return err
	}
	if *breakMachine != "" && dbg.Session.Paused() {
		fmt.Fprintf(out, "breakpoint hit: target halted at %.3f ms\n", float64(dbg.Board.Now())/1e6)
		if err := dbg.StepOnTarget(time.Second); err != nil {
			return err
		}
		fmt.Fprintf(out, "stepped to next model event at %.3f ms, highlights %v\n",
			float64(dbg.Board.Now())/1e6, dbg.GDM.HighlightedElements())
		if err := dbg.Session.ClearBreakpoint("cli"); err != nil {
			return err
		}
		dbg.Session.Continue()
		if spent := dbg.Board.Now(); spent < budget {
			if err := dbg.RunNs(budget - spent); err != nil {
				return err
			}
		}
	}

	fmt.Fprintln(out, "== animated model ==")
	fmt.Fprint(out, dbg.RenderASCII())
	fmt.Fprintf(out, "\ntransport=%s events=%d reactions=%d target-cycles=%d instr-cycles=%d\n",
		*transport, dbg.Session.Handled, dbg.GDM.Reactions, dbg.Board.Cycles(), dbg.Board.InstrumentationCycles())
	fmt.Fprintln(out, "\n== timing diagram ==")
	fmt.Fprint(out, dbg.TimingDiagramASCII(76))

	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(dbg.RenderSVG()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgOut)
	}

	if *checkpointOut != "" {
		cp, err := dbg.Checkpoint()
		if err != nil {
			return err
		}
		if err := cp.WriteFile(*checkpointOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote checkpoint %s (t=%.3f ms)\n", *checkpointOut, float64(cp.Time)/1e6)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644); err != nil {
			return err
		}
		traceWritten = true
		fmt.Fprintf(out, "wrote trace %s (%d records)\n", *traceOut, dbg.Session.Trace.Len())
	}

	if *rewindMs > 0 {
		landed, err := dbg.Session.RewindTo(*rewindMs * 1_000_000)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n== rewound to %.3f ms ==\n", float64(landed)/1e6)
		fmt.Fprint(out, dbg.RenderASCII())
		fmt.Fprintf(out, "trace now %d records; board halted=%v cycles=%d\n",
			dbg.Session.Trace.Len(), dbg.Board.Halted(), dbg.Board.Cycles())
	}
	return nil
}

// campaignOpts is the -campaign mode configuration.
type campaignOpts struct {
	model                  string
	variants, workers      int
	warmMs, runMs, seed    uint64
	loss, jitterUs         string
	rotate, shuffle        bool
	missBudget, dropBudget int64
	shrink                 bool
	outPath                string
}

// runCampaign forks -campaign variants from one warm checkpoint and
// aggregates their observations. The aggregate JSON is a pure function of
// the spec: the CI determinism job diffs it across runs and across
// -campaign-workers settings.
func runCampaign(out io.Writer, o campaignOpts) error {
	spec := campaign.Spec{
		Model: o.model, Variants: o.variants, Seed: o.seed,
		WarmNs: o.warmMs * 1_000_000, RunNs: o.runMs * 1_000_000,
		Workers:     o.workers,
		RotateSlots: o.rotate, ShufflePriorities: o.shuffle,
		MissBudget: o.missBudget, DropBudget: o.dropBudget,
		Shrink: o.shrink,
	}
	for _, f := range strings.Split(o.loss, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return fmt.Errorf("bad -campaign-loss entry %q: %w", f, err)
		}
		spec.Loss = append(spec.Loss, uint32(v))
	}
	for _, f := range strings.Split(o.jitterUs, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -campaign-jitter-us entry %q: %w", f, err)
		}
		spec.JitterNs = append(spec.JitterNs, v*1000)
	}

	agg, err := campaign.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign: %s, %d variants forked at t=%.0f ms, %d ms each\n",
		agg.Model, agg.Variants, float64(agg.WarmNs)/1e6, o.runMs)
	fmt.Fprintf(out, "violating=%d errors=%d drops=%d\n",
		agg.Summary.Violating, agg.Summary.Errors, agg.Summary.TotalDrops)
	for _, ts := range agg.Summary.Tasks {
		name := ts.Task
		if ts.Node != "" {
			name = ts.Node + "/" + ts.Task
		}
		fmt.Fprintf(out, "task %s: worst response %.3f ms, %d misses across %d variants\n",
			name, float64(ts.MaxWorstResponseNs)/1e6, ts.TotalMisses, ts.VariantsMissed)
	}

	buf, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if o.outPath == "" {
		_, err := out.Write(buf)
		return err
	}
	if err := os.WriteFile(o.outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote aggregate %s (%d bytes)\n", o.outPath, len(buf))
	return nil
}

func parseExec(mode string) (target.ExecMode, error) {
	switch mode {
	case "auto":
		return target.ExecAuto, nil
	case "serial":
		return target.ExecSerial, nil
	case "parallel":
		return target.ExecParallel, nil
	}
	return 0, fmt.Errorf("unknown -cluster-exec %q (auto|serial|parallel)", mode)
}

// runCluster is the distributed debugging path: the placed system boots on
// a TDMA cluster (the Fig. 6 workflow's target is a network of boards) and
// the one session's trace carries the slot-grid lane. The bus parameters
// come from the caller — the repro.StandardBus schedule for built-in
// models, the scenario's bus declaration for -scenario — and are fixed per
// invocation so every run of the same model is byte-deterministic (the CI
// replay jobs diff traces across processes).
func runCluster(out io.Writer, sys *comdes.System, cfg target.ClusterConfig, env func(now uint64, node string, b *target.Board), budgetNs, rewindMs uint64, traceOut, checkpointOut, restoreIn, svgOut string) error {
	dbg, err := repro.DebugCluster(sys, repro.ClusterDebugConfig{Cluster: cfg, Environment: env})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster: %v on a %.0f µs TDMA cycle (%.1f%% loss, %.0f µs release jitter)\n",
		dbg.Cluster.Nodes(), float64(cfg.Bus.CycleNs())/1000,
		float64(cfg.Bus.LossPerMille)/10, float64(cfg.Bus.JitterNs)/1000)
	traceWritten := false
	if traceOut != "" {
		defer func() {
			if !traceWritten {
				_ = os.WriteFile(traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644)
			}
		}()
	}

	if restoreIn != "" {
		cp, err := checkpoint.ReadFile(restoreIn)
		if err != nil {
			return err
		}
		if err := dbg.RestoreCheckpoint(cp); err != nil {
			return err
		}
		fmt.Fprintf(out, "restored cluster checkpoint: t=%.3f ms, %d trace records carried over\n",
			float64(dbg.Cluster.Now())/1e6, dbg.Session.Trace.Len())
	}

	if rewindMs > 0 {
		// Periodic whole-cluster checkpoints + per-node input/command logs:
		// the distributed session gains reverse execution.
		if _, err := dbg.EnableCheckpointing(250 * time.Millisecond); err != nil {
			return err
		}
	}
	if err := dbg.RunNs(budgetNs); err != nil {
		return err
	}

	fmt.Fprintln(out, "== animated model ==")
	fmt.Fprint(out, dbg.RenderASCII())
	fmt.Fprintf(out, "\nevents=%d reactions=%d network: %d sent, %d lost\n",
		dbg.Session.Handled, dbg.GDM.Reactions, dbg.Cluster.Net.Sent, dbg.Cluster.Net.Dropped)
	for _, node := range dbg.Cluster.Nodes() {
		// The ok-bool distinguishes "on the bus, no traffic" (printed, all
		// zero) from "unknown to the bus" (skipped) — the old zero-value
		// check silently conflated the two and hid idle slot owners.
		st, ok := dbg.BusStats(node)
		if !ok {
			continue
		}
		fmt.Fprintf(out, "bus[%s]: %d enqueued, %d delivered, %d lost, worst queueing %.0f µs\n",
			node, st.Enqueued, st.Delivered, st.Dropped, float64(st.WorstQueueNs)/1000)
	}
	fmt.Fprintln(out, "\n== timing diagram (bus track = slot grid) ==")
	fmt.Fprint(out, dbg.TimingDiagramASCII(76))

	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(dbg.GDM.Scene().SVG()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", svgOut)
	}
	if checkpointOut != "" {
		cp, err := dbg.Checkpoint()
		if err != nil {
			return err
		}
		if err := cp.WriteFile(checkpointOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote checkpoint %s (t=%.3f ms)\n", checkpointOut, float64(cp.Time)/1e6)
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644); err != nil {
			return err
		}
		traceWritten = true
		fmt.Fprintf(out, "wrote trace %s (%d records)\n", traceOut, dbg.Session.Trace.Len())
	}

	if rewindMs > 0 {
		landed, err := dbg.Session.RewindTo(rewindMs * 1_000_000)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n== rewound to %.3f ms ==\n", float64(landed)/1e6)
		fmt.Fprint(out, dbg.RenderASCII())
		fmt.Fprintf(out, "trace now %d records; network: %d sent, %d lost\n",
			dbg.Session.Trace.Len(), dbg.Cluster.Net.Sent, dbg.Cluster.Net.Dropped)
	}
	return nil
}

// remoteOpts is the -connect mode configuration.
type remoteOpts struct {
	addr, model, resume      string
	source, sourceName       string // -scenario DSL text shipped to the server
	budgetNs                 uint64
	exec                     string
	breakMachine, breakState string
	traceOut, digestOut      string
	detach                   bool
}

// runRemote drives one session on a gmdfd farm server: create (or resume
// from a checkpoint digest), optionally break, run the budget, fetch the
// trace, optionally detach with a checkpoint. The server builds the same
// system, environment and bus schedule this process would build in-process
// — so the fetched trace diffs clean against a local run.
func runRemote(out io.Writer, o remoteOpts) error {
	cl, err := farm.Dial(o.addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	created, err := cl.Create(farm.CreateParams{
		Model: o.model, Checkpoint: o.resume, Exec: o.exec,
		Source: o.source, SourceName: o.sourceName,
	})
	if err != nil {
		return err
	}
	sid := created.Session
	if o.resume != "" {
		fmt.Fprintf(out, "resumed session %s on %s: model %s at t=%.3f ms, %d trace records carried over\n",
			sid, o.addr, created.Model, float64(created.NowNs)/1e6, created.Records)
	} else {
		fmt.Fprintf(out, "created session %s on %s: model %s\n", sid, o.addr, created.Model)
	}
	if len(created.Nodes) > 1 {
		fmt.Fprintf(out, "cluster session: nodes %v\n", created.Nodes)
	}
	if _, err := cl.Attach(sid); err != nil {
		return err
	}

	if o.breakMachine != "" && o.breakState != "" {
		br, err := cl.Break(sid, farm.BreakParams{ID: "cli", Machine: o.breakMachine, State: o.breakState})
		if err != nil {
			return err
		}
		where := "host-side (trace filtering)"
		if br.OnTarget {
			where = "on-target (resident agent)"
		}
		fmt.Fprintf(out, "breakpoint: enter %s.%s — armed %s\n", o.breakMachine, o.breakState, where)
	}

	budget := created.NowNs + o.budgetNs
	run, err := cl.RunUntil(sid, budget)
	if err != nil {
		return err
	}
	if run.Paused && run.LastBreak != "" {
		fmt.Fprintf(out, "breakpoint hit: target halted at %.3f ms\n", float64(run.NowNs)/1e6)
		// Disarm before resuming — a still-true condition re-trips at the
		// next check site — then spend the rest of the budget.
		if err := cl.ClearBreak(sid, run.LastBreak); err != nil {
			return err
		}
		if _, err := cl.Continue(sid); err != nil {
			return err
		}
		if run, err = cl.RunUntil(sid, budget); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "remote session at %.3f ms: %d events handled, %d trace records\n",
		float64(run.NowNs)/1e6, run.Handled, run.Records)

	if o.traceOut != "" {
		tr, err := cl.TraceStable(sid)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.traceOut, []byte(tr.Stable), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote trace %s (%d records)\n", o.traceOut, tr.Records)
	}

	if o.detach {
		det, err := cl.Detach(sid, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "detached: checkpoint %s (t=%.3f ms)\n", det.Digest, float64(det.TimeNs)/1e6)
		if o.digestOut != "" {
			if err := os.WriteFile(o.digestOut, []byte(det.Digest+"\n"), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func defaultBindings() []core.Binding {
	g := core.NewGDM("tmp")
	_ = engine.BindCOMDES(g)
	return g.Bindings()
}

func loadSystem(name string) (*comdes.System, error) {
	if sys, err := models.ByName(name); err == nil {
		return sys, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mod, err := metamodel.ReadModelXML(comdes.Metamodel(), f)
	if err != nil {
		return nil, err
	}
	return comdes.FromModel(mod)
}
