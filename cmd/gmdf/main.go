// Command gmdf is the Graphical Model Debugger tool: it walks the paper's
// Fig. 6 workflow — input selection, abstraction guide, command setting,
// GDM creation, debugging — against a simulated embedded target, printing
// the abstraction-guide panel (Fig. 4), live animation frames and the
// final timing diagram.
//
//	go run ./cmd/gmdf -model heating -transport passive -ms 3000
//	go run ./cmd/gmdf -model path/to/model.xml -gdm out.gdm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/comdes"
	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/engine"
	"repro/internal/metamodel"
	"repro/internal/plant"
	"repro/internal/target"
	"repro/internal/value"
	"repro/internal/workbench"
	"repro/models"
)

func main() {
	model := flag.String("model", "heating", "built-in model (heating|traffic|ring|dist) or COMDES model XML path; a placed multi-node model (dist) debugs as a cluster on a TDMA bus")
	transport := flag.String("transport", "active", "command interface: active (RS-232) | passive (JTAG)")
	ms := flag.Uint64("ms", 2000, "virtual milliseconds to debug")
	gdmOut := flag.String("gdm", "", "write the generated GDM file (JSON) here")
	svgOut := flag.String("svg", "", "write the final animated frame (SVG) here")
	breakMachine := flag.String("break-machine", "", "state machine to break on (e.g. heater.thermostat); on the active interface the breakpoint runs on the target itself")
	breakState := flag.String("break-state", "", "state whose entry trips -break-machine (e.g. Heating)")
	checkpointOut := flag.String("checkpoint", "", "write a serialized checkpoint of the final state here (restore it in a fresh process with -restore)")
	restoreIn := flag.String("restore", "", "restore a checkpoint taken from a run of the same model, then continue for -ms (models with stateful environments need the in-process recorder instead)")
	rewindMs := flag.Uint64("rewind", 0, "after the run, rewind the session to this virtual millisecond and report the state there (enables periodic checkpointing)")
	traceOut := flag.String("trace", "", "write the stable-format session trace here (checkpoint-replay determinism diffs)")
	clusterExec := flag.String("cluster-exec", "auto", "multi-node execution mode: auto (parallel on a TDMA bus) | serial | parallel; traces are byte-identical across modes")
	flag.Parse()

	sys, err := loadSystem(*model)
	if err != nil {
		log.Fatal(err)
	}
	meta := comdes.Metamodel()
	mod, err := comdes.ToModel(sys, meta)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 6 steps 1–4 through the workbench wizard.
	w := workbench.NewWizard()
	if err := w.SelectInputs(meta, mod); err != nil {
		log.Fatal(err)
	}
	if err := w.UseMapping(engine.DefaultCOMDESMapping()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== abstraction guide (Fig. 4) ==")
	fmt.Print(w.GuidePanel())
	if err := w.FinishAbstraction(); err != nil {
		log.Fatal(err)
	}
	for _, b := range defaultBindings() {
		if err := w.BindCommand(b); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.FinishCommandSetup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GDM created: %d elements, %d command bindings\n\n",
		len(w.GDM().Elements()), len(w.GDM().Bindings()))
	if *gdmOut != "" {
		data, err := w.GDM().MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*gdmOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *gdmOut, len(data))
	}

	// A placed multi-node model debugs distributed: one board per node on
	// a shared clock, cross-node signals on a time-triggered TDMA bus, one
	// session over every node's active interface.
	if len(sys.Nodes()) > 1 {
		if *breakMachine != "" || *breakState != "" {
			log.Fatal("gmdf: -break-machine/-break-state are not supported on multi-node models yet")
		}
		if *rewindMs > 0 {
			log.Fatal("gmdf: -rewind needs the single-board recorder; multi-node models support -checkpoint/-restore")
		}
		if *transport == "passive" {
			log.Fatal("gmdf: multi-node models debug over every node's active interface; -transport passive is not supported")
		}
		var exec target.ExecMode
		switch *clusterExec {
		case "auto":
			exec = target.ExecAuto
		case "serial":
			exec = target.ExecSerial
		case "parallel":
			exec = target.ExecParallel
		default:
			log.Fatalf("gmdf: unknown -cluster-exec %q (auto|serial|parallel)", *clusterExec)
		}
		runCluster(sys, *ms, exec, *traceOut, *checkpointOut, *restoreIn, *svgOut)
		return
	}

	// Step 5 via the facade (compile + board + channel + session).
	tp := repro.Active
	if *transport == "passive" {
		tp = repro.Passive
	}
	dbg, err := repro.Debug(sys, repro.DebugConfig{
		Transport:   tp,
		Environment: environmentFor(sys.Name()),
	})
	if err != nil {
		log.Fatal(err)
	}

	if *restoreIn != "" {
		cp, err := checkpoint.ReadFile(*restoreIn)
		if err != nil {
			log.Fatal(err)
		}
		if err := dbg.RestoreCheckpoint(cp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored checkpoint: t=%.3f ms, %d trace records carried over\n",
			float64(dbg.Board.Now())/1e6, dbg.Session.Trace.Len())
	}

	// Optional model-level breakpoint: set -> hit -> step -> clear ->
	// continue, end to end over the selected command interface. On the
	// active interface the condition is compiled onto the target-resident
	// agent (halt at the triggering instruction); passively it falls back
	// to host-side event filtering (halt after the frame crosses).
	budget := *ms * 1_000_000
	if *breakMachine != "" && *breakState != "" {
		if err := dbg.BreakOnState("cli", *breakMachine, *breakState); err != nil {
			log.Fatal(err)
		}
		where := "host-side (trace filtering)"
		if dbg.Session.Breakpoints()[0].OnTarget() {
			where = "on-target (resident agent)"
		}
		fmt.Printf("breakpoint: enter %s.%s — armed %s\n", *breakMachine, *breakState, where)
	}
	if *rewindMs > 0 {
		// Periodic checkpoints + input/command logs: the session gains
		// reverse execution (enabled after breakpoint arming so the initial
		// checkpoint carries the armed condition).
		if _, err := dbg.EnableCheckpointing(250 * time.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	if err := dbg.RunNs(budget); err != nil {
		log.Fatal(err)
	}
	if *breakMachine != "" && dbg.Session.Paused() {
		fmt.Printf("breakpoint hit: target halted at %.3f ms\n", float64(dbg.Board.Now())/1e6)
		if err := dbg.StepOnTarget(time.Second); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stepped to next model event at %.3f ms, highlights %v\n",
			float64(dbg.Board.Now())/1e6, dbg.GDM.HighlightedElements())
		if err := dbg.Session.ClearBreakpoint("cli"); err != nil {
			log.Fatal(err)
		}
		dbg.Session.Continue()
		if spent := dbg.Board.Now(); spent < budget {
			if err := dbg.RunNs(budget - spent); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("== animated model ==")
	fmt.Print(dbg.RenderASCII())
	fmt.Printf("\ntransport=%s events=%d reactions=%d target-cycles=%d instr-cycles=%d\n",
		*transport, dbg.Session.Handled, dbg.GDM.Reactions, dbg.Board.Cycles(), dbg.Board.InstrumentationCycles())
	fmt.Println("\n== timing diagram ==")
	fmt.Print(dbg.TimingDiagramASCII(76))

	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(dbg.RenderSVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}

	if *checkpointOut != "" {
		cp, err := dbg.Checkpoint()
		if err != nil {
			log.Fatal(err)
		}
		if err := cp.WriteFile(*checkpointOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote checkpoint %s (t=%.3f ms)\n", *checkpointOut, float64(cp.Time)/1e6)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace %s (%d records)\n", *traceOut, dbg.Session.Trace.Len())
	}

	if *rewindMs > 0 {
		landed, err := dbg.Session.RewindTo(*rewindMs * 1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== rewound to %.3f ms ==\n", float64(landed)/1e6)
		fmt.Print(dbg.RenderASCII())
		fmt.Printf("trace now %d records; board halted=%v cycles=%d\n",
			dbg.Session.Trace.Len(), dbg.Board.Halted(), dbg.Board.Cycles())
	}
}

// runCluster is the distributed debugging path: the placed system boots on
// a TDMA cluster (the Fig. 6 workflow's target is a network of boards) and
// the one session's trace carries the slot-grid lane. The bus parameters
// are fixed — 100 µs slot per node in placement order, 50 µs gaps, 20 µs
// release jitter, 10% seeded loss, 100 µs propagation — so every run of
// the same model is byte-deterministic (the CI replay jobs diff traces
// across processes).
func runCluster(sys *comdes.System, ms uint64, exec target.ExecMode, traceOut, checkpointOut, restoreIn, svgOut string) {
	bus := &dtm.BusSchedule{GapNs: 50_000, JitterNs: 20_000, LossPerMille: 100, Seed: 2010}
	for _, node := range sys.Nodes() {
		bus.Slots = append(bus.Slots, dtm.BusSlot{Owner: node, LenNs: 100_000})
	}
	dbg, err := repro.DebugCluster(sys, repro.ClusterDebugConfig{
		Cluster: target.ClusterConfig{
			LatencyNs: 100_000,
			Bus:       bus,
			Board:     target.Config{Baud: 2_000_000},
			Exec:      exec,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %v on a %.0f µs TDMA cycle (10%% loss, 20 µs release jitter)\n",
		dbg.Cluster.Nodes(), float64(bus.CycleNs())/1000)

	if restoreIn != "" {
		cp, err := checkpoint.ReadFile(restoreIn)
		if err != nil {
			log.Fatal(err)
		}
		if err := dbg.RestoreCheckpoint(cp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored cluster checkpoint: t=%.3f ms, %d trace records carried over\n",
			float64(dbg.Cluster.Now())/1e6, dbg.Session.Trace.Len())
	}

	if err := dbg.RunNs(ms * 1_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== animated model ==")
	fmt.Print(dbg.RenderASCII())
	fmt.Printf("\nevents=%d reactions=%d network: %d sent, %d lost\n",
		dbg.Session.Handled, dbg.GDM.Reactions, dbg.Cluster.Net.Sent, dbg.Cluster.Net.Dropped)
	for _, node := range dbg.Cluster.Nodes() {
		// The ok-bool distinguishes "on the bus, no traffic" (printed, all
		// zero) from "unknown to the bus" (skipped) — the old zero-value
		// check silently conflated the two and hid idle slot owners.
		st, ok := dbg.BusStats(node)
		if !ok {
			continue
		}
		fmt.Printf("bus[%s]: %d enqueued, %d delivered, %d lost, worst queueing %.0f µs\n",
			node, st.Enqueued, st.Delivered, st.Dropped, float64(st.WorstQueueNs)/1000)
	}
	fmt.Println("\n== timing diagram (bus track = slot grid) ==")
	fmt.Print(dbg.TimingDiagramASCII(76))

	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(dbg.GDM.Scene().SVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", svgOut)
	}
	if checkpointOut != "" {
		cp, err := dbg.Checkpoint()
		if err != nil {
			log.Fatal(err)
		}
		if err := cp.WriteFile(checkpointOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote checkpoint %s (t=%.3f ms)\n", checkpointOut, float64(cp.Time)/1e6)
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, []byte(dbg.Session.Trace.FormatStable()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace %s (%d records)\n", traceOut, dbg.Session.Trace.Len())
	}
}

func defaultBindings() []core.Binding {
	g := core.NewGDM("tmp")
	_ = engine.BindCOMDES(g)
	return g.Bindings()
}

func loadSystem(name string) (*comdes.System, error) {
	switch name {
	case "heating":
		return models.Heating(models.HeatingOptions{})
	case "traffic":
		return models.TrafficLight()
	case "ring":
		return models.TokenRing(4)
	case "dist":
		return models.Distributed()
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mod, err := metamodel.ReadModelXML(comdes.Metamodel(), f)
	if err != nil {
		return nil, err
	}
	return comdes.FromModel(mod)
}

// environmentFor supplies a plant for the built-in models.
func environmentFor(sysName string) func(uint64, *target.Board) {
	switch sysName {
	case "heating":
		room := plant.NewThermal(15)
		var last uint64
		return func(now uint64, b *target.Board) {
			dt := now - last
			last = now
			power := 0.0
			if p, err := b.ReadOutput("heater", "power"); err == nil {
				power = p.Float()
			}
			_ = b.WriteInput("heater", "temp", value.F(room.Step(dt, power)))
			_ = b.WriteInput("heater", "mode", value.I(2))
		}
	case "traffic":
		return func(now uint64, b *target.Board) {
			t := float64(now%12_000_000_000) / 1e9
			_ = b.WriteInput("signal", "t", value.F(t))
		}
	default:
		return nil
	}
}
