package main

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/farm"
)

// TestFailureStillFlushesTrace: a failure after the run (unwritable -svg
// path) must not truncate the -trace artifact — the deferred flush writes
// the same bytes a clean run writes. This is the regression test for the
// old main(), whose log.Fatal calls skipped every deferred cleanup.
func TestFailureStillFlushesTrace(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.trace")
	if err := run([]string{"-model", "ring", "-ms", "200", "-trace", clean}, io.Discard); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	failed := filepath.Join(dir, "failed.trace")
	badSVG := filepath.Join(dir, "no-such-dir", "frame.svg")
	err = run([]string{"-model", "ring", "-ms", "200", "-trace", failed, "-svg", badSVG}, io.Discard)
	if err == nil {
		t.Fatal("run with unwritable -svg path did not fail")
	}
	got, err := os.ReadFile(failed)
	if err != nil {
		t.Fatalf("failed run left no trace file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("trace flushed on the failure path differs from a clean run's trace")
	}
}

// TestFailureStillFlushesClusterTrace: same contract on the distributed
// path.
func TestFailureStillFlushesClusterTrace(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.trace")
	if err := run([]string{"-model", "dist", "-ms", "60", "-trace", clean}, io.Discard); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	failed := filepath.Join(dir, "failed.trace")
	badSVG := filepath.Join(dir, "no-such-dir", "frame.svg")
	if err := run([]string{"-model", "dist", "-ms", "60", "-trace", failed, "-svg", badSVG}, io.Discard); err == nil {
		t.Fatal("cluster run with unwritable -svg path did not fail")
	}
	got, err := os.ReadFile(failed)
	if err != nil {
		t.Fatalf("failed cluster run left no trace file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cluster trace flushed on the failure path differs from a clean run's trace")
	}
}

// TestBadFlagsReturnError: argument problems come back as errors, they do
// not kill the process.
func TestBadFlagsReturnError(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "no-such-model", "-ms", "10"},
		{"-model", "dist", "-ms", "10", "-cluster-exec", "bogus"},
		{"-model", "dist", "-ms", "10", "-transport", "passive"},
		{"-model", "dist", "-ms", "10", "-campaign", "4", "-campaign-loss", "bogus"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("run(%v) did not fail", args)
		}
	}
}

// TestConnectMatchesInProcess: the -connect client mode against a live
// farm server produces a trace byte-identical to the in-process run of
// the same model and budget — the CI determinism diff, in miniature.
func TestConnectMatchesInProcess(t *testing.T) {
	srv, err := farm.NewServer(farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	dir := t.TempDir()
	local := filepath.Join(dir, "local.trace")
	remote := filepath.Join(dir, "remote.trace")
	if err := run([]string{"-model", "heating", "-ms", "300", "-trace", local}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-connect", lis.Addr().String(), "-model", "heating", "-ms", "300", "-trace", remote}, &buf); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("remote-driven trace differs from in-process trace")
	}
	if !strings.Contains(buf.String(), "created session") {
		t.Fatalf("unexpected -connect output:\n%s", buf.String())
	}
}

// TestConnectDetachResume: -detach hands back a digest that -resume turns
// into the rest of the run, byte-identically.
func TestConnectDetachResume(t *testing.T) {
	srv, err := farm.NewServer(farm.Options{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	if err := run([]string{"-connect", addr, "-model", "heating", "-ms", "600", "-trace", full}, io.Discard); err != nil {
		t.Fatal(err)
	}
	digestFile := filepath.Join(dir, "digest")
	if err := run([]string{"-connect", addr, "-model", "heating", "-ms", "300", "-detach", "-digest-out", digestFile}, io.Discard); err != nil {
		t.Fatal(err)
	}
	digest, err := os.ReadFile(digestFile)
	if err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.trace")
	if err := run([]string{"-connect", addr, "-model", "heating", "-resume", strings.TrimSpace(string(digest)), "-ms", "300", "-trace", resumed}, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("detach/resume trace differs from the uninterrupted run")
	}
}
