// Command gdmrender renders a saved GDM file (the "initial GDM file" of
// Fig. 6 step 4, JSON) to SVG or ASCII.
//
//	go run ./cmd/gdmrender -in model.gdm -format svg > model.svg
//	go run ./cmd/gdmrender -demo heating -format ascii
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/comdes"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/models"
)

func main() {
	in := flag.String("in", "", "GDM JSON file ('-' for stdin)")
	demo := flag.String("demo", "", "render a built-in model instead (heating|traffic|ring)")
	format := flag.String("format", "ascii", "output format: ascii|svg|json")
	flag.Parse()

	var g *core.GDM
	var err error
	switch {
	case *demo != "":
		g, err = demoGDM(*demo)
	case *in == "-":
		g, err = readGDM(os.Stdin)
	case *in != "":
		var f *os.File
		f, err = os.Open(*in)
		if err == nil {
			defer f.Close()
			g, err = readGDM(f)
		}
	default:
		err = fmt.Errorf("need -in or -demo (see -help)")
	}
	if err != nil {
		log.Fatal(err)
	}

	switch *format {
	case "svg":
		fmt.Print(g.Scene().SVG())
	case "ascii":
		fmt.Print(g.Scene().ASCII(0, 0))
	case "json":
		data, err := g.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	default:
		log.Fatalf("unknown format %q", *format)
	}
}

func readGDM(r io.Reader) (*core.GDM, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return core.LoadGDM(data)
}

func demoGDM(name string) (*core.GDM, error) {
	switch name {
	case "heating":
		s, err := models.Heating(models.HeatingOptions{})
		if err != nil {
			return nil, err
		}
		return buildGDM(s)
	case "traffic":
		s, err := models.TrafficLight()
		if err != nil {
			return nil, err
		}
		return buildGDM(s)
	case "ring":
		s, err := models.TokenRing(4)
		if err != nil {
			return nil, err
		}
		return buildGDM(s)
	}
	return nil, fmt.Errorf("unknown demo %q", name)
}

func buildGDM(sys *comdes.System) (*core.GDM, error) {
	meta := comdes.Metamodel()
	model, err := comdes.ToModel(sys, meta)
	if err != nil {
		return nil, err
	}
	g, err := core.Abstract(model, engine.DefaultCOMDESMapping())
	if err != nil {
		return nil, err
	}
	if err := engine.BindCOMDES(g); err != nil {
		return nil, err
	}
	return g, nil
}
