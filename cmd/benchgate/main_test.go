package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkE5_Host-4              	 4303826	       278.9 ns/op	      16 B/op	       1 allocs/op
BenchmarkE7_Target/clean-4      	 8694662	       138.6 ns/op	        14.10 target-cycles/ms	       6 B/op	       0 allocs/op
BenchmarkE7_Target/clean-interp-4	 7360216	       163.0 ns/op	       6 B/op	       0 allocs/op
BenchmarkE7_Target/clean-4      	 8000000	       141.2 ns/op	       6 B/op	       0 allocs/op
BenchmarkE7_Target/instrumented-4	 1000000	      1042 ns/op
PASS
ok  	repro	12.3s
pkg: repro/internal/farm
BenchmarkFarmSession-4          	     356	   3361768 ns/op	  201344 B/op	    2101 allocs/op
PASS
`

func parseSample(t *testing.T) Report {
	t.Helper()
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBench(t *testing.T) {
	rep := parseSample(t)
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results, want 5: %+v", len(rep.Results), rep.Results)
	}

	clean, ok := rep.find("BenchmarkE7_Target/clean")
	if !ok {
		t.Fatal("BenchmarkE7_Target/clean not found (GOMAXPROCS suffix not stripped?)")
	}
	// Two lines for the same benchmark (-count=2): the best run wins.
	if clean.NsPerOp != 138.6 {
		t.Errorf("clean ns/op = %v, want best-of 138.6", clean.NsPerOp)
	}
	if !clean.HasMem || clean.BytesPerOp != 6 || clean.AllocsPerOp != 0 {
		t.Errorf("clean mem columns = %+v", clean)
	}
	if clean.Iterations != 8694662 {
		t.Errorf("clean iterations = %d", clean.Iterations)
	}

	instr, ok := rep.find("BenchmarkE7_Target/instrumented")
	if !ok {
		t.Fatal("instrumented not found")
	}
	if instr.HasMem {
		t.Error("instrumented had no -benchmem columns but HasMem is set")
	}
	if instr.NsPerOp != 1042 {
		t.Errorf("instrumented ns/op = %v", instr.NsPerOp)
	}

	farm, ok := rep.find("BenchmarkFarmSession")
	if !ok {
		t.Fatal("BenchmarkFarmSession not found")
	}
	if farm.AllocsPerOp != 2101 {
		t.Errorf("farm allocs/op = %d", farm.AllocsPerOp)
	}
}

func TestGate(t *testing.T) {
	base := parseSample(t)
	const key = "BenchmarkE7_Target/clean"

	fresh := func(ns float64, allocs int64) Report {
		return Report{Results: []Result{{
			Name: key, Iterations: 1, NsPerOp: ns,
			BytesPerOp: 6, AllocsPerOp: allocs, HasMem: true,
		}}}
	}

	if _, err := gate(fresh(140, 0), base, key, 15); err != nil {
		t.Errorf("1%% slower within a 15%% limit should pass: %v", err)
	}
	if _, err := gate(fresh(120, 0), base, key, 15); err != nil {
		t.Errorf("an improvement should pass: %v", err)
	}
	if _, err := gate(fresh(200, 0), base, key, 15); err == nil {
		t.Error("44% regression must fail the gate")
	}
	if _, err := gate(fresh(140, 2), base, key, 15); err == nil {
		t.Error("allocs/op growth must fail the gate even within the ns/op limit")
	}
	if _, err := gate(fresh(140, 0), base, "BenchmarkNope", 15); err == nil {
		t.Error("missing key must fail")
	}
}
