// Command benchgate parses `go test -bench` output into a stable JSON
// form and gates performance regressions against a checked-in baseline.
//
// Two modes:
//
//	benchgate -in bench.out -json BENCH_8.json
//	    Parse benchmark output and write the results as JSON (the
//	    checked-in baseline format).
//
//	benchgate -in bench.out -baseline BENCH_8.json -key BenchmarkE7_Target/clean -max-regress 15
//	    Compare the named benchmark in fresh output against the baseline
//	    and exit non-zero when ns/op regressed by more than -max-regress
//	    percent, or when allocs/op grew at all (allocation counts are
//	    machine-independent, so any growth is a real regression).
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix (`BenchmarkE7_Target/clean-4` -> `BenchmarkE7_Target/clean`) so
// baselines compare across machines with different core counts. When the
// same benchmark appears multiple times (go test -count=N), the best
// (minimum) ns/op is kept — the minimum is the least noisy estimate of
// the true cost on a shared runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	HasMem      bool    `json:"hasMem,omitempty"` // -benchmem columns were present
}

// Report is the JSON document benchgate reads and writes.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches `BenchmarkName-N  iters  X ns/op [custom metrics] [Y B/op  Z allocs/op]`.
// Custom ReportMetric columns (events/ms, target-cycles/ms, …) may appear
// between ns/op and the -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?`)

// gomaxprocsSuffix strips the trailing -N go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// parseBench reads `go test -bench` output, keeping the best ns/op per
// normalized benchmark name.
func parseBench(r io.Reader) (Report, error) {
	var rep Report
	best := map[string]int{} // name -> index into rep.Results
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: normalize(m[1])}
		var err error
		if res.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return rep, fmt.Errorf("benchgate: bad iteration count in %q: %w", line, err)
		}
		if res.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return rep, fmt.Errorf("benchgate: bad ns/op in %q: %w", line, err)
		}
		if m[4] != "" {
			res.HasMem = true
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if i, ok := best[res.Name]; ok {
			if res.NsPerOp < rep.Results[i].NsPerOp {
				rep.Results[i] = res
			}
			continue
		}
		best[res.Name] = len(rep.Results)
		rep.Results = append(rep.Results, res)
	}
	return rep, sc.Err()
}

func (rep Report) find(name string) (Result, bool) {
	for _, r := range rep.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// gate compares one benchmark in cur against base. It returns a
// description of the comparison and an error when the gate fails.
func gate(cur, base Report, key string, maxRegressPct float64) (string, error) {
	c, ok := cur.find(key)
	if !ok {
		return "", fmt.Errorf("benchgate: %s not found in fresh benchmark output", key)
	}
	b, ok := base.find(key)
	if !ok {
		return "", fmt.Errorf("benchgate: %s not found in baseline", key)
	}
	if b.NsPerOp <= 0 {
		return "", fmt.Errorf("benchgate: baseline %s has non-positive ns/op", key)
	}
	pct := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
	desc := fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f ns/op (%+.1f%%, limit +%.0f%%)",
		key, c.NsPerOp, b.NsPerOp, pct, maxRegressPct)
	if c.HasMem && b.HasMem {
		desc += fmt.Sprintf("; %d allocs/op vs baseline %d", c.AllocsPerOp, b.AllocsPerOp)
		if c.AllocsPerOp > b.AllocsPerOp {
			return desc, fmt.Errorf("benchgate: %s allocs/op grew %d -> %d", key, b.AllocsPerOp, c.AllocsPerOp)
		}
	}
	if pct > maxRegressPct {
		return desc, fmt.Errorf("benchgate: %s regressed %.1f%% (limit %.0f%%)", key, pct, maxRegressPct)
	}
	return desc, nil
}

func run() error {
	in := flag.String("in", "", "benchmark output file (go test -bench ... | tee file); - for stdin")
	jsonOut := flag.String("json", "", "write parsed results as JSON to this file")
	baseline := flag.String("baseline", "", "baseline JSON file to gate against")
	key := flag.String("key", "", "benchmark name to gate (normalized, e.g. BenchmarkE7_Target/clean)")
	keys := flag.String("keys", "", "comma-separated benchmark names to gate (adds to -key)")
	maxRegress := flag.Float64("max-regress", 15, "maximum allowed ns/op regression in percent")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("benchgate: -in is required")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("benchgate: no benchmark lines found in %s", *in)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d results to %s\n", len(rep.Results), *jsonOut)
	}

	if *baseline != "" {
		var gateKeys []string
		if *key != "" {
			gateKeys = append(gateKeys, *key)
		}
		for _, k := range strings.Split(*keys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				gateKeys = append(gateKeys, k)
			}
		}
		if len(gateKeys) == 0 {
			return fmt.Errorf("benchgate: -baseline requires -key or -keys")
		}
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(buf, &base); err != nil {
			return fmt.Errorf("benchgate: bad baseline %s: %w", *baseline, err)
		}
		// Report every gate before failing, so one CI run shows the whole
		// regression picture instead of the first tripwire.
		var failed []error
		for _, k := range gateKeys {
			desc, err := gate(rep, base, k, *maxRegress)
			if desc != "" {
				fmt.Println("benchgate:", desc)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = append(failed, err)
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("benchgate: %d of %d gates failed", len(failed), len(gateKeys))
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
