// Command gmdfd is the debug farm daemon: a long-running server
// multiplexing many isolated debug sessions — each an independent
// simulated board or TDMA cluster — behind a newline-delimited JSON
// protocol over TCP. Clients (gmdf -connect, CI scripts, tests) create
// sessions by model name, attach to their event streams, set
// breakpoints, step, checkpoint and rewind; sessions detached with a
// checkpoint can be resumed byte-identically in another gmdfd process
// sharing the same -store directory.
//
//	gmdfd -listen 127.0.0.1:7788 -store /var/lib/gmdfd -http 127.0.0.1:7789
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/farm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gmdfd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gmdfd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7788", "TCP address to serve the farm protocol on (port 0 picks a free port)")
	store := fs.String("store", "", "checkpoint store directory; empty keeps checkpoints in memory only (detach/resume then works within this process, not across processes)")
	httpAddr := fs.String("http", "", "optional HTTP address exposing /stats (JSON counters: sessions, attach-latency percentiles, events streamed)")
	maxSessions := fs.Int("max-sessions", farm.DefaultMaxSessions, "maximum concurrently active sessions")
	maxDSLKB := fs.Int("max-dsl-kb", farm.DefaultMaxSourceBytes/1024, "maximum scenario DSL source size accepted per create request, in KB (negative disables DSL creates)")
	workers := fs.Int("workers", 0, "simulation worker pool size; bounds CPU used across all sessions (0 = GOMAXPROCS)")
	verbose := fs.Bool("v", false, "log per-connection and per-session lifecycle lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := farm.Options{StoreDir: *store, MaxSessions: *maxSessions, MaxSourceBytes: *maxDSLKB * 1024, Workers: *workers}
	if *verbose {
		opts.Logf = log.New(os.Stderr, "gmdfd: ", log.LstdFlags).Printf
	}
	srv, err := farm.NewServer(opts)
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The scripted callers (CI, tests) parse this line for the bound port.
	fmt.Fprintf(out, "gmdfd listening on %s\n", lis.Addr())
	if *store != "" {
		fmt.Fprintf(out, "gmdfd checkpoint store at %s\n", *store)
	}

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "gmdfd stats at http://%s/stats\n", hl.Addr())
		go func() { _ = http.Serve(hl, srv) }()
		defer hl.Close()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil {
		return err
	}
	st := srv.StatsSnapshot()
	fmt.Fprintf(out, "gmdfd shut down: %d sessions served (%d resumed), %d requests, %d events streamed\n",
		st.SessionsCreated+st.SessionsResumed, st.SessionsResumed, st.Requests, st.EventsStreamed)
	return nil
}
