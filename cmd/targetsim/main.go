// Command targetsim runs generated code on the simulated embedded board
// and prints the command stream a GDM host would receive over the active
// RS-232 interface — useful for inspecting what the instrumented target
// actually says.
//
//	go run ./cmd/targetsim -model heating -ms 200
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/comdes"
	"repro/internal/plant"
	"repro/internal/protocol"
	"repro/internal/target"
	"repro/internal/value"
	"repro/models"
)

func main() {
	model := flag.String("model", "heating", "built-in model (heating|traffic|ring)")
	ms := flag.Uint64("ms", 200, "virtual milliseconds to run")
	maxPrint := flag.Int("n", 40, "max events to print")
	flag.Parse()

	var sys *comdes.System
	var err error
	switch *model {
	case "heating":
		sys, err = models.Heating(models.HeatingOptions{})
	case "traffic":
		sys, err = models.TrafficLight()
	case "ring":
		sys, err = models.TokenRing(4)
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err != nil {
		log.Fatal(err)
	}
	prog, err := codegen.Compile(sys, codegen.Options{
		Instrument: codegen.Instrument{StateEnter: true, Transitions: true, Signals: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := target.NewBoard("main", prog, target.Config{Bindings: sys.Bindings}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if *model == "heating" {
		room := plant.NewThermal(15)
		var last uint64
		b.PreLatch = func(now uint64, actor string) {
			if actor != "heater" {
				return
			}
			dt := now - last
			last = now
			power := 0.0
			if p, err := b.ReadOutput("heater", "power"); err == nil {
				power = p.Float()
			}
			_ = b.WriteInput("heater", "temp", value.F(room.Step(dt, power)))
			_ = b.WriteInput("heater", "mode", value.I(2))
		}
	}

	var dec protocol.Decoder
	printed := 0
	for t := uint64(0); t < *ms*1_000_000; t += 1_000_000 {
		b.RunFor(1_000_000)
		evs, _ := dec.Feed(b.HostPort().Recv())
		for _, ev := range evs {
			if printed < *maxPrint {
				fmt.Println(ev)
			}
			printed++
		}
	}
	fmt.Printf("\n%d events total; target: %d cycles (%d instrumentation), %d UART bytes, %d decode errors\n",
		printed, b.Cycles(), b.InstrumentationCycles(), b.Link.PortA().Stats().Bytes, dec.Errors)
}
