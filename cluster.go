package repro

// The distributed half of the facade: Debug assembles the pipeline for a
// single board; DebugCluster does the same for a placed multi-node system
// — one board per node on a shared virtual clock, cross-node signals on
// the dtm.Network (constant-latency or a time-triggered TDMA bus), and ONE
// model-level session animated by every node's active command interface.

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/codegen"
	"repro/internal/comdes"
	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/engine"
	"repro/internal/metamodel"
	"repro/internal/target"
)

// ClusterDebugConfig parameterises DebugCluster.
type ClusterDebugConfig struct {
	// Cluster carries the target-side configuration: network latency, the
	// optional TDMA bus schedule, per-node board parameters.
	Cluster target.ClusterConfig
	// Instrument overrides the active instrumentation points woven into
	// every node's program (default: state entries, transitions, signals).
	Instrument *codegen.Instrument
	// Environment, when set, runs at every task release of every node (the
	// plant hook, with the node name for placement-aware stimuli).
	Environment func(now uint64, node string, b *target.Board)
}

// ClusterDebugger bundles one assembled distributed debugging setup.
type ClusterDebugger struct {
	Sys     *comdes.System
	Cluster *target.Cluster
	Meta    *metamodel.Metamodel
	Model   *metamodel.Model
	GDM     *core.GDM
	Session *engine.Session
	// Serials maps node name -> that board's host-side command channel.
	// The session polls them in sorted node order (deterministic traces);
	// the first node's channel doubles as the session's RemoteDebug path.
	Serials map[string]*engine.SerialSource
	// Recorder is non-nil once EnableCheckpointing has run.
	Recorder *checkpoint.ClusterRecorder
}

// clusterControl adapts a whole cluster to engine.TargetControl: the
// session's pause button halts every node (a global debug freeze on the
// shared virtual clock).
type clusterControl struct{ cl *target.Cluster }

func (c clusterControl) Halt() {
	for _, n := range c.cl.Nodes() {
		c.cl.Boards[n].Halt()
	}
}

func (c clusterControl) Resume() {
	for _, n := range c.cl.Nodes() {
		c.cl.Boards[n].Resume()
	}
}

func (c clusterControl) Halted() bool {
	for _, n := range c.cl.Nodes() {
		if !c.cl.Boards[n].Halted() {
			return false
		}
	}
	return len(c.cl.Nodes()) > 0
}

// DebugCluster assembles the full GMDF pipeline for a placed multi-node
// COMDES system.
func DebugCluster(sys *comdes.System, cfg ClusterDebugConfig) (*ClusterDebugger, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(sys.Nodes()) < 2 {
		return nil, fmt.Errorf("repro: DebugCluster needs a placed multi-node system (got %d nodes); use Debug", len(sys.Nodes()))
	}
	ccfg := cfg.Cluster
	if cfg.Instrument != nil {
		ccfg.Compile.Instrument = *cfg.Instrument
	} else {
		ccfg.Compile.Instrument = codegen.Instrument{StateEnter: true, Transitions: true, Signals: true}
	}
	cl, err := target.BuildCluster(sys, ccfg)
	if err != nil {
		return nil, err
	}
	if cfg.Environment != nil {
		env := cfg.Environment
		for _, node := range cl.Nodes() {
			node := node
			brd := cl.Boards[node]
			brd.PreLatch = func(now uint64, actor string) { env(now, node, brd) }
		}
	}

	meta := comdes.Metamodel()
	model, err := comdes.ToModel(sys, meta)
	if err != nil {
		return nil, err
	}
	gdm, err := core.Abstract(model, engine.DefaultCOMDESMapping())
	if err != nil {
		return nil, err
	}
	if err := engine.BindCOMDES(gdm); err != nil {
		return nil, err
	}

	session := engine.NewSession(gdm, clusterControl{cl})
	d := &ClusterDebugger{
		Sys: sys, Cluster: cl, Meta: meta, Model: model, GDM: gdm,
		Session: session, Serials: map[string]*engine.SerialSource{},
	}
	for _, node := range cl.Nodes() {
		src := engine.NewSerialSource(cl.Boards[node].HostPort())
		d.Serials[node] = src
		session.AddSource(src)
	}
	return d, nil
}

// Run advances the cluster and the session for dur of virtual time,
// pumping events every millisecond. It returns early when a model-level
// breakpoint pauses the session.
func (d *ClusterDebugger) Run(dur time.Duration) error {
	return d.RunNs(uint64(dur.Nanoseconds()))
}

// RunNs is Run in raw nanoseconds of virtual time.
func (d *ClusterDebugger) RunNs(durNs uint64) error {
	end := d.Cluster.Now() + durNs
	const slice = 1_000_000
	for d.Cluster.Now() < end {
		if d.Session.Paused() {
			return nil
		}
		d.Cluster.RunUntil(d.Cluster.Now() + slice)
		if _, err := d.Session.ProcessEvents(d.Cluster.Now()); err != nil {
			return err
		}
		for _, n := range d.Cluster.Nodes() {
			if err := d.Cluster.Boards[n].Err(); err != nil {
				return fmt.Errorf("repro: node %s: %w", n, err)
			}
		}
		if d.Recorder != nil {
			if err := d.Recorder.Observe(d.Cluster.Now()); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnableCheckpointing attaches a whole-cluster checkpoint recorder to the
// session: an initial checkpoint is taken now and further ones every
// interval of virtual time, while per-node environment inputs and wire
// commands are logged. The session gains working RewindTo/ReplayUntil
// over the distributed timeline — rewind below a bus incident and replay
// the exact frame interleaving that produced it. Enable after arming
// standing breakpoints so the initial checkpoint carries them.
func (d *ClusterDebugger) EnableCheckpointing(interval time.Duration) (*checkpoint.ClusterRecorder, error) {
	if d.Recorder != nil {
		return d.Recorder, nil
	}
	rec, err := checkpoint.AttachCluster(d.Cluster, d.Session, d.Serials, uint64(interval.Nanoseconds()))
	if err != nil {
		return nil, err
	}
	d.Recorder = rec
	d.Session.AttachRewinder(rec)
	return rec, nil
}

// Checkpoint captures the complete distributed execution state — every
// board, frames queued and in flight on the bus, the shared clock, the
// session trace and the per-node command channels — as one serializable
// value.
func (d *ClusterDebugger) Checkpoint() (*checkpoint.Checkpoint, error) {
	return checkpoint.CaptureClusterSession(d.Cluster, d.Session, d.Serials)
}

// RestoreCheckpoint rewinds the distributed debugger to a checkpoint taken
// from a cluster built from the same placed system (this process or a
// fresh one).
func (d *ClusterDebugger) RestoreCheckpoint(cp *checkpoint.Checkpoint) error {
	return checkpoint.ApplyClusterSession(cp, d.Cluster, d.Session, d.Serials)
}

// BusStats returns node's TX accounting on the time-triggered bus. ok is
// false when the bus does not know the node — no TDMA schedule, a
// misspelled name, or a slot-less node that never sent.
func (d *ClusterDebugger) BusStats(node string) (dtm.BusStats, bool) {
	return d.Cluster.BusStats(node)
}

// RenderASCII renders the current animated model view for terminals.
func (d *ClusterDebugger) RenderASCII() string { return d.GDM.Scene().ASCII(0, 0) }

// TimingDiagramASCII renders the recorded trace as a timing diagram; on a
// TDMA cluster the "bus" track is the slot-grid lane (value = transmitting
// node, 'x' marks = lost frames).
func (d *ClusterDebugger) TimingDiagramASCII(width int) string {
	return d.Session.Trace.TimingDiagram().ASCII(width)
}
