package repro

import (
	"repro/internal/dtm"
	"repro/internal/plant"
	"repro/internal/target"
	"repro/internal/value"
)

// Standard environments and cluster wiring for the built-in models
// (models.ByName). These live here rather than in the models package so
// models stays free of target imports — and so the gmdf CLI and the farm
// server share one definition: identical systems plus identical
// environments plus identical bus schedules is what makes a remote-driven
// session's trace byte-identical to an in-process run of the same model.

// StandardEnvironment returns a fresh environment hook for the named
// built-in model, nil when the model needs none. The closure owns any
// plant state (the heating model's thermal room), so every session gets
// an independent, deterministic environment — two sessions of the same
// model never share a plant.
func StandardEnvironment(name string) func(now uint64, b *target.Board) {
	switch name {
	case "heating":
		room := plant.NewThermal(15)
		var last uint64
		return func(now uint64, b *target.Board) {
			dt := now - last
			last = now
			power := 0.0
			if p, err := b.ReadOutput("heater", "power"); err == nil {
				power = p.Float()
			}
			_ = b.WriteInput("heater", "temp", value.F(room.Step(dt, power)))
			_ = b.WriteInput("heater", "mode", value.I(2))
		}
	case "traffic":
		return func(now uint64, b *target.Board) {
			t := float64(now%12_000_000_000) / 1e9
			_ = b.WriteInput("signal", "t", value.F(t))
		}
	}
	return nil
}

// StatefulEnvironment reports whether the named model's standard
// environment carries state of its own outside the checkpoint (the
// heating plant's thermal room lives in the closure, not on the board).
// Checkpoint-fork campaigns refuse such models: a forked variant would
// resume against a plant that never saw the warm-up; models with stateful
// environments need the in-process recorder instead.
func StatefulEnvironment(name string) bool { return name == "heating" }

// StandardBoardConfig is the single-board configuration for the named
// built-in model. Most models run on the default board (zero Config); the
// priorityload timing experiment needs the 1 MHz preemptive board its
// hog/lowly interference story is calibrated for.
func StandardBoardConfig(name string) target.Config {
	if name == "priorityload" {
		return target.Config{CPUHz: 1_000_000, Sched: dtm.FixedPriority, Baud: 2_000_000}
	}
	return target.Config{}
}

// StandardBus is the fixed TDMA schedule the gmdf CLI and the farm server
// put under a placed multi-node model: 100 µs slot per node in placement
// order, 50 µs gaps, 20 µs release jitter, 10% seeded loss. Fixed
// parameters keep every run of the same model byte-deterministic, which
// the cross-process replay diffs rely on.
func StandardBus(nodes []string) *dtm.BusSchedule {
	bus := &dtm.BusSchedule{GapNs: 50_000, JitterNs: 20_000, LossPerMille: 100, Seed: 2010}
	for _, node := range nodes {
		bus.Slots = append(bus.Slots, dtm.BusSlot{Owner: node, LenNs: 100_000})
	}
	return bus
}

// StandardClusterConfig is the cluster-side configuration matching
// StandardBus (100 µs propagation, 2 Mbaud boards), shared by the CLI's
// distributed path and the farm's cluster sessions.
func StandardClusterConfig(nodes []string, exec target.ExecMode) target.ClusterConfig {
	return target.ClusterConfig{
		LatencyNs: 100_000,
		Bus:       StandardBus(nodes),
		Board:     target.Config{Baud: 2_000_000},
		Exec:      exec,
	}
}
