package repro_test

import (
	"os"
	"testing"

	"repro"
	"repro/internal/dsl"
	"repro/models"
)

// TestScenarioFidelityHeating pins the DSL front end to the Go
// constructors: the committed .gmdf port of the heating model must
// produce a byte-identical stable trace to models.Heating under the
// same budget. Any drift — declaration order, wire order, a value kind
// in a component parameter — shows up as a trace diff here before it
// confuses a user comparing -scenario and -model runs.
func TestScenarioFidelityHeating(t *testing.T) {
	src, err := os.ReadFile("examples/dsl/heating.gmdf")
	if err != nil {
		t.Fatal(err)
	}
	sc, diags, err := dsl.LoadSource("examples/dsl/heating.gmdf", string(src))
	if err != nil {
		t.Fatalf("LoadSource: %v\n%s", err, dsl.Render("examples/dsl/heating.gmdf", string(src), diags))
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on the committed scenario: %s", d.Msg)
	}
	if got, want := sc.RunNs(), uint64(300_000_000); got != want {
		t.Fatalf("RunNs = %d, want %d", got, want)
	}

	fromDSL, err := repro.Debug(sc.Sys, sc.DebugConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fromDSL.RunNs(sc.RunNs()); err != nil {
		t.Fatal(err)
	}

	sys, err := models.ByName("heating")
	if err != nil {
		t.Fatal(err)
	}
	fromGo, err := repro.Debug(sys, repro.DebugConfig{
		Transport:   repro.Active,
		Environment: repro.StandardEnvironment(sys.Name()),
		Board:       repro.StandardBoardConfig(sys.Name()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fromGo.RunNs(sc.RunNs()); err != nil {
		t.Fatal(err)
	}

	a := fromDSL.Session.Trace.FormatStable()
	b := fromGo.Session.Trace.FormatStable()
	if a != b {
		t.Fatalf("DSL trace differs from constructor trace:\ndsl   %d bytes\nmodel %d bytes\n%s", len(a), len(b), firstDiff(a, b))
	}
	if fromDSL.Session.Trace.Len() == 0 {
		t.Fatal("empty trace: fidelity comparison is vacuous")
	}
}

// firstDiff excerpts the first divergence between two stable traces so a
// failure points at the offending record instead of dumping megabytes.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+120, i+120
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return "first diff at byte " + itoa(i) + ":\ndsl:   …" + a[lo:hiA] + "…\nmodel: …" + b[lo:hiB] + "…"
		}
	}
	return "one trace is a prefix of the other"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
